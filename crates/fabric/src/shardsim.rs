//! Sharded fabric engine: one [`ShardSim`] per dragonfly group under
//! the conservative [`ParallelSim`] coordinator, for cluster-scale
//! sweeps (1000+ nodes) the serial engine cannot reach.
//!
//! # Shard ownership
//!
//! The partition follows [`Topology::group_view`]: a shard owns its
//! group's switches, the edge links of the nodes attached there, and
//! every directed trunk *sourced* in the group. A message's walk only
//! ever reserves state the executing shard owns; when the route crosses
//! a group boundary the message has, by then, cleared the boundary
//! trunk (owned by the sending shard), and the continuation is handed
//! to the destination group via [`ShardSim::send_to`], due at the
//! head's arrival instant on the far side.
//!
//! # The lookahead rule
//!
//! Every cross-group handoff is due at least one trunk step —
//! propagation + hop latency, [`trunk_lookahead`] — after the emitting
//! event's time: a launch event hands off no earlier than uplink + the
//! boundary trunk step (2 steps), and a continuation entering group
//! *g* hands off to a third group no earlier than one further trunk
//! step. That bound is the coordinator's conservative lookahead, so no
//! shard ever receives an event below its local clock (asserted by
//! `tests/shardsim_props.rs` over arbitrary topologies).
//!
//! # Per-hop timing
//!
//! Identical math to the serial [`Fabric`](crate::Fabric): edge links
//! keep scalar busy-until semantics, trunks share the fabric's
//! `TrunkState::traverse` (weighted processor sharing + finite
//! queue). This engine measures routing, queueing and QoS at scale; VNI
//! enforcement stays with the serial k8s engine, which exercises it
//! end to end per message.

use std::sync::Arc;

use shs_des::{ParallelSim, ShardSim, SimDur, SimTime};

use crate::fabric::{LinkState, TrunkState};
use crate::faults::{repair_route, FaultKind, LivenessMask, MAX_REPAIR_PATH};
use crate::packet::CostModel;
use crate::topology::{RoutingPolicy, Topology, TopologySpec};
use crate::types::{SwitchId, TrafficClass};

/// The conservative lookahead of the sharded engine: one trunk step.
/// Any event an in-flight message triggers in *another* group is at
/// least one boundary-trunk traversal away.
pub fn trunk_lookahead(model: &CostModel) -> SimDur {
    SimDur::from_nanos(model.propagation_ns + model.hop_latency_ns)
}

/// One message in flight (small and `Copy`: continuations carry it
/// across shard boundaries by value). The route is chosen once at
/// injection — where adaptive/fault-fallback selection runs against the
/// source shard's live state — and travels with the message, so a
/// boundary handoff never re-derives it (the destination shard would
/// not know which candidate the source picked).
#[derive(Debug, Clone, Copy)]
struct Msg {
    src: u32,
    dst: u32,
    t0: SimTime,
    len: u64,
    tc: TrafficClass,
    id: u64,
    /// Switch ids of the chosen route, endpoints included.
    path: [u16; MAX_REPAIR_PATH],
    /// Number of valid entries in `path`.
    path_len: u8,
}

/// Counters one shard owns outright (its group's slice of the sweep).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct GroupCounters {
    /// Messages launched by nodes of this group.
    pub sent: u64,
    /// Messages delivered to nodes of this group.
    pub delivered: u64,
    /// Messages congestion-dropped on trunks this group owns.
    pub congestion_drops: u64,
    /// Payload bytes of delivered messages.
    pub payload_bytes: u64,
    /// Sum of end-to-end latencies of delivered messages (ns).
    pub latency_sum_ns: u64,
    /// Worst end-to-end latency of a delivered message (ns).
    pub latency_max_ns: u64,
    /// Switch hops of delivered messages.
    pub switch_hops: u64,
    /// Delivered messages per class, [`TrafficClass::index`] order.
    pub class_delivered: [u64; 4],
    /// Congestion drops per class, [`TrafficClass::index`] order.
    pub class_drops: [u64; 4],
    /// Messages dropped `NoRoute`: no live route existed at injection,
    /// or a trunk on the chosen route died while the message was in
    /// flight. Zero on a healthy fabric.
    pub route_drops: u64,
}

/// The per-shard world: one group's slice of the fabric.
pub struct GroupNet {
    topo: Arc<Topology>,
    model: CostModel,
    group: usize,
    nodes_per_switch: usize,
    /// First global node id of this group.
    node_base: u32,
    /// Edge-link occupancy per local node.
    edge: Vec<LinkState>,
    /// Trunk state for the directed trunks this group owns.
    trunks: Vec<TrunkState>,
    /// Dense `(from, to) → trunks` index over all switch pairs
    /// (`u32::MAX` where this group owns no such trunk).
    trunk_idx: Vec<u32>,
    /// This shard's view of fabric liveness. Every shard schedules the
    /// same globally-known fault schedule locally, so the copies never
    /// diverge and no cross-shard fault notification (which would break
    /// the lookahead) is needed.
    mask: LivenessMask,
    /// The group's counters.
    pub counters: GroupCounters,
}

impl GroupNet {
    fn new(topo: Arc<Topology>, model: CostModel, group: usize, nodes_per_switch: usize) -> Self {
        let view = topo.group_view(group);
        let n = topo.switch_count();
        let mut trunk_idx = vec![u32::MAX; n * n];
        for (i, &(a, b)) in view.trunks_out.iter().enumerate() {
            trunk_idx[a.0 * n + b.0] = i as u32;
        }
        let node_base = (view.switches[0].0 * nodes_per_switch) as u32;
        GroupNet {
            model,
            group,
            nodes_per_switch,
            node_base,
            edge: vec![LinkState::default(); view.switches.len() * nodes_per_switch],
            trunks: vec![TrunkState::default(); view.trunks_out.len()],
            trunk_idx,
            mask: LivenessMask::default(),
            topo,
            counters: GroupCounters::default(),
        }
    }

    #[inline]
    fn switch_of(&self, node: u32) -> SwitchId {
        SwitchId(node as usize / self.nodes_per_switch)
    }

    #[inline]
    fn edge_mut(&mut self, node: u32) -> &mut LinkState {
        &mut self.edge[(node - self.node_base) as usize]
    }

    /// Reserve the owned directed trunk `a → b` for one message.
    fn traverse(
        &mut self,
        a: SwitchId,
        b: SwitchId,
        tc: TrafficClass,
        ser_ns: u64,
        len: u64,
        head_t: SimTime,
    ) -> Result<(SimTime, SimTime), ()> {
        debug_assert_eq!(self.topo.group_of(a), self.group, "shard reserves only owned trunks");
        let n = self.topo.switch_count();
        let ti = self.trunk_idx[a.0 * n + b.0];
        debug_assert!(ti != u32::MAX, "route follows topology links");
        self.trunks[ti as usize]
            .traverse(tc, ser_ns, len, head_t, self.model.trunk_queue_ns)
            .map_err(|_| ())
    }

    /// Live queue depth of an owned directed trunk (UGAL's signal).
    fn queue_of(&self, a: SwitchId, b: SwitchId, tc: TrafficClass, now: SimTime) -> u64 {
        let n = self.topo.switch_count();
        let ti = self.trunk_idx[a.0 * n + b.0];
        debug_assert!(ti != u32::MAX, "UGAL only inspects owned first hops");
        self.trunks[ti as usize].queue_ns(tc, now)
    }

    /// Route selection at injection: the policy's primary route (for
    /// [`RoutingPolicy::Adaptive`], the UGAL-L choice — both candidate
    /// first hops are sourced at the local switch, so the signal is
    /// shard-local) when fully live, else the same deterministic
    /// fallback order as the serial engine: minimal, every Valiant salt
    /// class, BFS repair. `None` means the pair is partitioned.
    fn select_path(
        &self,
        src_sw: SwitchId,
        dst_sw: SwitchId,
        tc: TrafficClass,
        salt: u64,
        now: SimTime,
        out: &mut [u16; MAX_REPAIR_PATH],
    ) -> Option<u8> {
        let fill = |out: &mut [u16; MAX_REPAIR_PATH], path: &[SwitchId]| -> u8 {
            for (slot, s) in out.iter_mut().zip(path.iter()) {
                *slot = s.0 as u16;
            }
            path.len() as u8
        };
        let primary: &[SwitchId] = match self.topo.policy() {
            RoutingPolicy::Adaptive if src_sw != dst_sw => {
                let min = self.topo.route_minimal(src_sw, dst_sw);
                let val = self.topo.route_valiant(src_sw, dst_sw, salt);
                let prefer_val = val.len() > min.len() && {
                    let qm = self.queue_of(min[0], min[1], tc, now);
                    let qv = self.queue_of(val[0], val[1], tc, now);
                    qm * min.len() as u64 > qv * val.len() as u64 + self.model.adaptive_bias_ns
                };
                if prefer_val {
                    val
                } else {
                    min
                }
            }
            _ => self.topo.route(src_sw, dst_sw, salt),
        };
        if self.mask.route_live(primary) {
            return Some(fill(out, primary));
        }
        let min = self.topo.route_minimal(src_sw, dst_sw);
        if self.mask.route_live(min) {
            return Some(fill(out, min));
        }
        if self.topo.groups() >= 3 {
            let classes = self.topo.salt_classes() as u64;
            for k in 0..classes {
                let val = self.topo.route_valiant(src_sw, dst_sw, (salt + k) % classes);
                if self.mask.route_live(val) {
                    return Some(fill(out, val));
                }
            }
        }
        repair_route(&self.topo, &self.mask, src_sw, dst_sw).map(|p| fill(out, &p))
    }

    /// Apply one fault event to this shard's liveness view.
    pub(crate) fn apply_fault(&mut self, kind: FaultKind) {
        self.mask.apply(kind);
    }
}

/// The launch event: route selection against the shard's live state,
/// uplink reservation in the source group, then the route walk (which
/// may hand off at a group boundary).
fn launch(s: &mut ShardSim<GroupNet>, mut m: Msg) {
    let now = s.now();
    let w = &mut s.world;
    w.counters.sent += 1;
    let src_sw = SwitchId(m.src as usize / w.nodes_per_switch);
    let dst_sw = SwitchId(m.dst as usize / w.nodes_per_switch);
    let mut path = [0u16; MAX_REPAIR_PATH];
    let Some(path_len) = w.select_path(src_sw, dst_sw, m.tc, m.id, now, &mut path) else {
        w.counters.route_drops += 1;
        return;
    };
    m.path = path;
    m.path_len = path_len;
    let ser = SimDur::from_nanos(w.model.serialize_ns(w.model.wire_bytes(m.len)));
    let step = trunk_lookahead(&w.model);
    let up = w.edge_mut(m.src);
    let t_start = now.max(up.up_busy);
    up.up_busy = t_start + ser;
    let head_t = t_start + step;
    let tail_t = t_start + ser;
    walk_from(s, m, 0, head_t, tail_t);
}

/// Walk the message's carried route from hop index `pos` (an owned
/// switch), reserving owned trunks; hand off to the next group's shard
/// at a boundary, or deliver onto the destination downlink. A trunk
/// that died after injection (the liveness check below) drops the
/// message `NoRoute` at the hop that would have crossed it.
fn walk_from(s: &mut ShardSim<GroupNet>, m: Msg, pos: usize, head_t: SimTime, tail_t: SimTime) {
    let topo = Arc::clone(&s.world.topo);
    let model = s.world.model;
    let ser_ns = model.serialize_ns(model.wire_bytes(m.len));
    let step = trunk_lookahead(&model);
    let prop = SimDur::from_nanos(model.propagation_ns);
    let ser = SimDur::from_nanos(ser_ns);

    let (mut head_t, mut tail_t) = (head_t, tail_t);
    let mut i = pos;
    while i + 1 < m.path_len as usize {
        let (a, b) = (SwitchId(m.path[i] as usize), SwitchId(m.path[i + 1] as usize));
        if !s.world.mask.link_live(a, b) {
            // The trunk died while the message was in flight.
            s.world.counters.route_drops += 1;
            return;
        }
        match s.world.traverse(a, b, m.tc, ser_ns, m.len, head_t) {
            Err(()) => {
                let c = &mut s.world.counters;
                c.congestion_drops += 1;
                c.class_drops[m.tc.index()] += 1;
                return;
            }
            Ok((start, finish)) => {
                head_t = start + step;
                tail_t = (tail_t + prop).max(finish);
            }
        }
        i += 1;
        let gb = topo.group_of(b);
        if gb != s.world.group {
            // The message cleared the boundary trunk this shard owns;
            // its head arrives at switch `b` (owned by group `gb`) at
            // `head_t`, at least one trunk step in the future — the
            // conservative lookahead. The continuation resumes at hop
            // index `i` of the carried route.
            let delay = head_t - s.now();
            s.send_to(gb, delay, move |d| {
                let head = d.now();
                walk_from(d, m, i, head, tail_t);
            });
            return;
        }
    }

    // Destination switch reached (it is ours): downlink + delivery.
    debug_assert_eq!(s.world.switch_of(m.dst).0, m.path[m.path_len as usize - 1] as usize);
    let down = s.world.edge_mut(m.dst);
    let t1 = head_t.max(down.down_busy);
    down.down_busy = t1 + ser;
    let arrival = (t1 + ser).max(tail_t + prop) + prop;
    let c = &mut s.world.counters;
    c.delivered += 1;
    c.payload_bytes += m.len;
    c.switch_hops += m.path_len as u64;
    c.class_delivered[m.tc.index()] += 1;
    let lat = (arrival - m.t0).as_nanos();
    c.latency_sum_ns += lat;
    c.latency_max_ns = c.latency_max_ns.max(lat);
}

/// One scheduled fault in a sweep's globally-known fault schedule.
/// `run_sweep` schedules it into **every** shard's local event queue
/// (before any message of the same instant), so all liveness views
/// flip identically and the conservative lookahead is untouched.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SweepFault {
    /// Instant the fault takes effect (ns).
    pub at_ns: u64,
    /// What fails (or recovers).
    pub kind: FaultKind,
}

/// A synthetic all-groups traffic sweep over a dragonfly topology —
/// the workload the scenario library and bench harness size up to
/// 1000+ nodes.
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// Fabric shape.
    pub spec: TopologySpec,
    /// Routing policy.
    pub policy: RoutingPolicy,
    /// Nodes attached per switch (≤ `spec.edge_ports`).
    pub nodes_per_switch: usize,
    /// Messages each node sends.
    pub messages_per_node: u32,
    /// Payload per message (bytes).
    pub payload_bytes: u64,
    /// Nominal gap between a node's consecutive sends (ns); per-message
    /// jitter spreads nodes inside the gap.
    pub interval_ns: u64,
    /// Every `k`-th message of a node goes cross-group (1 = all of
    /// them; 0 = none).
    pub cross_group_every: u32,
    /// Seed folded into every per-message hash.
    pub seed: u64,
    /// Timing model.
    pub model: CostModel,
    /// Fault schedule, applied identically in every shard.
    pub faults: Vec<SweepFault>,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            spec: TopologySpec { groups: 2, switches_per_group: 2, edge_ports: 8 },
            policy: RoutingPolicy::Minimal,
            nodes_per_switch: 4,
            messages_per_node: 8,
            payload_bytes: 4096,
            interval_ns: 2_000,
            cross_group_every: 2,
            seed: 1,
            model: CostModel::default(),
            faults: Vec::new(),
        }
    }
}

/// Deterministic per-message hash (splitmix64 over seed ⊕ node ⊕ k).
fn mix(seed: u64, node: u32, k: u32, lane: u64) -> u64 {
    let mut z = seed
        .wrapping_add((node as u64) << 32)
        .wrapping_add(k as u64)
        .wrapping_add(lane.wrapping_mul(0x9e37_79b9_7f4a_7c15));
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Aggregated outcome of [`run_sweep`]: the sum of every group's
/// counters plus the coordinator's accounting. Identical for any
/// thread count — the scenario layer serialises this into reports.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SweepStats {
    /// Total nodes in the topology.
    pub nodes: u64,
    /// Shards (= dragonfly groups).
    pub shards: usize,
    /// The conservative lookahead used (ns).
    pub lookahead_ns: u64,
    /// Whole-sweep totals.
    pub totals: GroupCounters,
    /// Per-group counters, group order.
    pub per_group: Vec<GroupCounters>,
    /// Events executed across all shards.
    pub events_executed: u64,
    /// Barrier windows the coordinator ran.
    pub windows: u64,
    /// Cross-group events injected.
    pub injected: u64,
    /// Minimum observed injection slack (ns): `event time − destination
    /// clock`, `None` when no cross-group event was exchanged. The
    /// conservative-sync invariant is `≥ 0`.
    pub min_inject_slack: Option<i128>,
}

impl SweepStats {
    /// Message conservation: every launched message was delivered,
    /// congestion-dropped, or route-dropped by a failure.
    pub fn conserved(&self) -> bool {
        self.totals.sent
            == self.totals.delivered + self.totals.congestion_drops + self.totals.route_drops
    }

    /// Mean delivered latency in ns (0 when nothing was delivered).
    pub fn mean_latency_ns(&self) -> u64 {
        self.totals.latency_sum_ns.checked_div(self.totals.delivered).unwrap_or(0)
    }
}

/// Run a sweep on `threads` workers (≤ one per group is useful; 0 and
/// 1 both mean inline serial execution). The result — every counter,
/// every clock — is bit-identical for any `threads` value.
pub fn run_sweep(cfg: &SweepConfig, threads: usize) -> SweepStats {
    assert!(cfg.nodes_per_switch >= 1 && cfg.nodes_per_switch <= cfg.spec.edge_ports);
    let topo = Arc::new(Topology::new(cfg.spec, cfg.policy));
    let lookahead = trunk_lookahead(&cfg.model);
    let worlds: Vec<GroupNet> = (0..topo.groups())
        .map(|g| GroupNet::new(Arc::clone(&topo), cfg.model, g, cfg.nodes_per_switch))
        .collect();
    let mut psim = ParallelSim::new(worlds, lookahead);

    // The fault schedule is globally known at setup: schedule it into
    // every shard before any message, so at equal instants the fault
    // event (lower sequence number) applies first and all shards'
    // liveness views flip identically — no cross-shard notification,
    // no lookahead impact.
    for g in 0..topo.groups() {
        for f in &cfg.faults {
            let kind = f.kind;
            psim.shard_mut(g)
                .at(SimTime::from_nanos(f.at_ns), move |s| s.world.apply_fault(kind));
        }
    }

    let nodes_per_group = (cfg.spec.switches_per_group * cfg.nodes_per_switch) as u32;
    let total_nodes = nodes_per_group * cfg.spec.groups as u32;
    let interval = cfg.interval_ns.max(1);
    for node in 0..total_nodes {
        let g = (node / nodes_per_group) as usize;
        for k in 0..cfg.messages_per_node {
            let cross = cfg.spec.groups > 1
                && cfg.cross_group_every > 0
                && k % cfg.cross_group_every == 0;
            let dst = if cross {
                let dg = (g + 1 + (mix(cfg.seed, node, k, 1) as usize % (cfg.spec.groups - 1)))
                    % cfg.spec.groups;
                dg as u32 * nodes_per_group + mix(cfg.seed, node, k, 2) as u32 % nodes_per_group
            } else {
                if nodes_per_group < 2 {
                    continue; // no distinct local peer exists
                }
                let base = g as u32 * nodes_per_group;
                let peer = base + mix(cfg.seed, node, k, 2) as u32 % nodes_per_group;
                if peer == node {
                    base + (peer - base + 1) % nodes_per_group
                } else {
                    peer
                }
            };
            let t0 = SimTime::from_nanos(
                k as u64 * interval + mix(cfg.seed, node, k, 3) % interval,
            );
            let tc = TrafficClass::ALL[(mix(cfg.seed, node, k, 4) % 4) as usize];
            let m = Msg {
                src: node,
                dst,
                t0,
                len: cfg.payload_bytes,
                tc,
                id: (node as u64) << 32 | k as u64,
                // Filled in by `launch` against the shard's live state.
                path: [0; MAX_REPAIR_PATH],
                path_len: 0,
            };
            psim.shard_mut(g).at(t0, move |s| launch(s, m));
        }
    }

    psim.run(threads);

    let per_group: Vec<GroupCounters> = psim.shards().map(|s| s.world.counters).collect();
    let mut totals = GroupCounters::default();
    for c in &per_group {
        totals.sent += c.sent;
        totals.delivered += c.delivered;
        totals.congestion_drops += c.congestion_drops;
        totals.payload_bytes += c.payload_bytes;
        totals.latency_sum_ns += c.latency_sum_ns;
        totals.latency_max_ns = totals.latency_max_ns.max(c.latency_max_ns);
        totals.switch_hops += c.switch_hops;
        totals.route_drops += c.route_drops;
        for i in 0..4 {
            totals.class_delivered[i] += c.class_delivered[i];
            totals.class_drops[i] += c.class_drops[i];
        }
    }
    SweepStats {
        nodes: total_nodes as u64,
        shards: psim.shard_count(),
        lookahead_ns: (cfg.model.propagation_ns + cfg.model.hop_latency_ns),
        totals,
        per_group,
        events_executed: psim.events_executed(),
        windows: psim.windows(),
        injected: psim.injected(),
        min_inject_slack: psim.min_inject_slack(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sweep_is_conserved_and_thread_invariant() {
        let cfg = SweepConfig::default();
        let base = run_sweep(&cfg, 1);
        assert!(base.totals.sent > 0);
        assert!(base.conserved(), "{:?}", base.totals);
        assert!(base.totals.delivered > 0);
        assert!(base.min_inject_slack.unwrap() >= 0);
        for threads in [2usize, 4] {
            assert_eq!(run_sweep(&cfg, threads), base, "threads={threads}");
        }
    }

    #[test]
    fn single_group_sweep_runs_serially_correct() {
        let cfg = SweepConfig {
            spec: TopologySpec { groups: 1, switches_per_group: 2, edge_ports: 4 },
            cross_group_every: 0,
            ..SweepConfig::default()
        };
        let stats = run_sweep(&cfg, 4);
        assert!(stats.conserved());
        assert_eq!(stats.shards, 1);
        assert_eq!(stats.injected, 0);
        assert!(stats.totals.delivered > 0);
    }

    #[test]
    fn valiant_sweep_crosses_intermediate_groups() {
        let cfg = SweepConfig {
            spec: TopologySpec { groups: 4, switches_per_group: 2, edge_ports: 4 },
            policy: RoutingPolicy::Valiant,
            cross_group_every: 1,
            ..SweepConfig::default()
        };
        let base = run_sweep(&cfg, 1);
        assert!(base.conserved());
        assert!(base.totals.delivered > 0);
        assert!(base.min_inject_slack.unwrap() >= 0);
        // Valiant detours mean more hops per delivered message than the
        // minimal 4-switch bound would allow on average workloads.
        assert!(base.totals.switch_hops >= base.totals.delivered * 2);
        assert_eq!(run_sweep(&cfg, 3), base);
    }

    #[test]
    fn adaptive_sweep_is_conserved_and_thread_invariant() {
        let cfg = SweepConfig {
            spec: TopologySpec { groups: 4, switches_per_group: 2, edge_ports: 4 },
            policy: RoutingPolicy::Adaptive,
            cross_group_every: 1,
            interval_ns: 200,
            ..SweepConfig::default()
        };
        let base = run_sweep(&cfg, 1);
        assert!(base.conserved(), "{:?}", base.totals);
        assert!(base.totals.delivered > 0);
        assert!(base.min_inject_slack.unwrap() >= 0);
        for threads in [2usize, 4] {
            assert_eq!(run_sweep(&cfg, threads), base, "threads={threads}");
        }
    }

    #[test]
    fn trunk_cut_mid_sweep_conserves_and_stays_thread_invariant() {
        // 3 groups × 1 switch: cut trunk (0, 1) mid-sweep. Adaptive
        // fallback detours via group 2; messages already in flight on
        // the dead trunk's route are route-dropped, and totals stay
        // identical at any thread count.
        let cfg = SweepConfig {
            spec: TopologySpec { groups: 3, switches_per_group: 1, edge_ports: 8 },
            policy: RoutingPolicy::Adaptive,
            cross_group_every: 1,
            messages_per_node: 16,
            ..SweepConfig::default()
        };
        let half = 8 * cfg.interval_ns;
        let cut = SweepFault {
            at_ns: half,
            kind: FaultKind::LinkDown(SwitchId(0), SwitchId(1)),
        };
        let cfg = SweepConfig { faults: vec![cut], ..cfg };
        let base = run_sweep(&cfg, 1);
        assert!(base.conserved(), "{:?}", base.totals);
        assert!(base.totals.delivered > 0, "detours keep traffic flowing");
        assert!(base.min_inject_slack.unwrap() >= 0);
        for threads in [2usize, 3] {
            assert_eq!(run_sweep(&cfg, threads), base, "threads={threads}");
        }
    }

    #[test]
    fn permanent_partition_route_drops_all_cross_traffic() {
        // 2 groups × 1 switch, only trunk dead from t = 0: every
        // cross-group message is a route drop, local ones deliver.
        let cfg = SweepConfig {
            spec: TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 8 },
            nodes_per_switch: 4,
            faults: vec![SweepFault {
                at_ns: 0,
                kind: FaultKind::LinkDown(SwitchId(0), SwitchId(1)),
            }],
            ..SweepConfig::default()
        };
        let stats = run_sweep(&cfg, 2);
        assert!(stats.conserved(), "{:?}", stats.totals);
        assert!(stats.totals.route_drops > 0);
        assert_eq!(stats.totals.congestion_drops, 0);
        // cross_group_every = 2: half of each node's messages detour
        // nowhere — exactly they are dropped.
        assert_eq!(
            stats.totals.route_drops,
            stats.totals.sent - stats.totals.delivered,
        );
        assert_eq!(run_sweep(&cfg, 1), stats);
    }

    #[test]
    fn link_up_restores_service_mid_sweep() {
        let cfg = SweepConfig {
            spec: TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 8 },
            messages_per_node: 16,
            faults: vec![
                SweepFault { at_ns: 0, kind: FaultKind::LinkDown(SwitchId(0), SwitchId(1)) },
                SweepFault {
                    at_ns: 8 * 2_000,
                    kind: FaultKind::LinkUp(SwitchId(0), SwitchId(1)),
                },
            ],
            ..SweepConfig::default()
        };
        let stats = run_sweep(&cfg, 2);
        assert!(stats.conserved());
        assert!(stats.totals.route_drops > 0, "early cross traffic died");
        // Cross-group deliveries resume after the LinkUp: some message
        // must have crossed (2 hops) post-recovery.
        assert!(stats.totals.switch_hops > stats.totals.delivered);
        assert_eq!(run_sweep(&cfg, 1), stats);
    }

    #[test]
    fn unloaded_cross_group_latency_matches_serial_fabric_formula() {
        // One message, idle fabric: the sharded walk must reproduce the
        // serial engine's unloaded arrival formula exactly.
        let cfg = SweepConfig {
            spec: TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 4 },
            nodes_per_switch: 1,
            messages_per_node: 1,
            cross_group_every: 1,
            interval_ns: 1,
            ..SweepConfig::default()
        };
        let stats = run_sweep(&cfg, 2);
        assert_eq!(stats.totals.sent, 2);
        assert_eq!(stats.totals.delivered, 2);
        let m = cfg.model;
        let ser = m.serialize_ns(m.wire_bytes(cfg.payload_bytes));
        // 2 switch hops: ser + 2*hop + 3*prop (the serial fabric's
        // unloaded_route_ns for a 2-switch route).
        let unloaded = ser + 2 * m.hop_latency_ns + 3 * m.propagation_ns;
        assert_eq!(stats.totals.latency_max_ns, unloaded);
    }
}
