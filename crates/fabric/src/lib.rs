//! # shs-fabric — the simulated Slingshot fabric
//!
//! Models the parts of the Slingshot network that the paper's security
//! and performance arguments rest on (§II-B/§II-C):
//!
//! * a Rosetta-like switch with **per-port VNI enforcement tables** — a
//!   packet is only routed when both the sender and the receiver port
//!   have been granted its VNI ([`switch::Switch`]);
//! * 200 Gb/s links with a cut-through timing model calibrated to
//!   Slingshot magnitudes ([`packet::CostModel`], [`fabric::Fabric`]);
//! * four traffic classes with deficit-weighted egress arbitration
//!   ([`switch::WrrArbiter`]) for the co-scheduling use case of §I.
//!
//! The crate is sans-IO: all functions take `now` and return outcomes or
//! arrival instants; the composition layer schedules the actual events.

pub mod fabric;
pub mod packet;
pub mod pktsim;
pub mod switch;
pub mod types;

pub use fabric::{Fabric, TransferOutcome, VniTraffic};
pub use pktsim::{simulate_contention, ClassStats, Flow};
pub use packet::{segment, CostModel, Packet};
pub use switch::{DropReason, Switch, SwitchConfig, SwitchCounters, Verdict, WrrArbiter};
pub use types::{NicAddr, PortId, TrafficClass, Vni};
