//! # shs-fabric — the simulated Slingshot fabric
//!
//! Models the parts of the Slingshot network that the paper's security
//! and performance arguments rest on (§II-B/§II-C):
//!
//! * a dragonfly [`topology::Topology`] of Rosetta-like switches —
//!   groups of locally all-to-all switches joined by global links, with
//!   a deterministic minimal/Valiant routing table computed at build
//!   time;
//! * **per-port VNI enforcement tables** on the edge switches — a
//!   packet is only routed when both the sender and the receiver port
//!   have been granted its VNI ([`switch::Switch`]);
//! * 200 Gb/s links with a cut-through timing model calibrated to
//!   Slingshot magnitudes ([`packet::CostModel`], [`fabric::Fabric`]),
//!   plus per-traffic-class weighted scheduling and finite queues on
//!   inter-switch links;
//! * four traffic classes with deficit-weighted egress arbitration
//!   ([`switch::WrrArbiter`]) for the co-scheduling use case of §I.
//!
//! The crate is sans-IO: all functions take `now` and return outcomes or
//! arrival instants; the composition layer schedules the actual events.
//! See `FABRIC.md` at the repository root for the topology model, the
//! routing scheme, and the packet path end to end.
//!
//! For cluster-scale sweeps (1000+ nodes) the [`shardsim`] module runs
//! the same per-hop timing model sharded per dragonfly group under
//! `shs_des::ParallelSim` — bit-identical results at any thread count.

pub mod fabric;
pub mod faults;
pub mod packet;
pub mod pktsim;
pub mod shardsim;
pub mod switch;
pub mod topology;
pub mod types;

pub use fabric::{
    Fabric, FabricAuditEvent, FabricError, TransferOutcome, TrunkClassCounters, VniTraffic,
};
pub use faults::{repair_route, FaultKind, LivenessMask, MAX_REPAIR_PATH};
pub use pktsim::{simulate_contention, ClassStats, Flow};
pub use packet::{segment, CostModel, Packet};
pub use switch::{DropReason, Switch, SwitchConfig, SwitchCounters, Verdict, WrrArbiter};
pub use shardsim::{
    run_sweep, trunk_lookahead, GroupCounters, GroupNet, SweepConfig, SweepFault, SweepStats,
};
pub use topology::{GroupView, RoutingPolicy, Topology, TopologySpec};
pub use types::{NicAddr, PortId, SwitchId, TrafficClass, Vni};
