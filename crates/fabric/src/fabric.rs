//! The fabric engine: topology (NICs attached to switch ports over
//! 200 Gbps links) plus the timing model for message- and packet-level
//! delivery, with busy-until link reservation for queueing effects.

use std::collections::BTreeMap;

use shs_des::{SimDur, SimTime};

use crate::packet::{CostModel, Packet};
use crate::switch::{DropReason, Switch, SwitchConfig, Verdict};
use crate::types::{NicAddr, PortId, TrafficClass, Vni};

/// Per-port link occupancy (full duplex: separate up/down directions).
#[derive(Debug, Clone, Copy, Default)]
struct LinkState {
    /// Node→switch direction busy until this instant.
    up_busy: SimTime,
    /// Switch→node direction busy until this instant.
    down_busy: SimTime,
}

/// Outcome of a message-level transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// The message will fully arrive at the destination NIC at `arrival`.
    Delivered {
        /// Arrival instant of the last byte at the destination NIC.
        arrival: SimTime,
        /// Instant the last byte left the source NIC (uplink released);
        /// this is when the sender's local RDMA completion can fire.
        src_done: SimTime,
    },
    /// Silently dropped in the fabric (VNI enforcement, routing, ...).
    Dropped(DropReason),
}

/// Fabric-level traffic accounting, keyed by VNI (the granularity the
/// fabric manager exposes to monitoring).
#[derive(Debug, Clone, Default)]
pub struct VniTraffic {
    /// Delivered messages.
    pub messages: u64,
    /// Delivered payload bytes.
    pub payload_bytes: u64,
}

/// Single-switch Slingshot fabric.
#[derive(Debug)]
pub struct Fabric {
    model: CostModel,
    switch: Switch,
    links: BTreeMap<PortId, LinkState>,
    ports_of: BTreeMap<NicAddr, PortId>,
    next_port: usize,
    traffic: BTreeMap<Vni, VniTraffic>,
}

impl Fabric {
    /// Build a fabric with default cost model and switch configuration.
    pub fn new(ports: usize) -> Self {
        Fabric::with_config(CostModel::default(), SwitchConfig { ports, ..Default::default() })
    }

    /// Build a fabric with explicit cost model and switch configuration.
    pub fn with_config(model: CostModel, switch_config: SwitchConfig) -> Self {
        Fabric {
            model,
            switch: Switch::new(switch_config),
            links: BTreeMap::new(),
            ports_of: BTreeMap::new(),
            next_port: 0,
            traffic: BTreeMap::new(),
        }
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Access the switch (counters, configuration).
    pub fn switch(&self) -> &Switch {
        &self.switch
    }

    /// Mutable access to the switch (fabric-manager operations).
    pub fn switch_mut(&mut self) -> &mut Switch {
        &mut self.switch
    }

    /// Attach a NIC to the next free port. Panics if the switch is full
    /// or the NIC is already attached (both are wiring bugs).
    pub fn attach(&mut self, nic: NicAddr) -> PortId {
        assert!(
            !self.ports_of.contains_key(&nic),
            "{nic} attached twice"
        );
        let port = PortId(self.next_port);
        self.next_port += 1;
        assert!(self.switch.bind(port, nic), "port {port} already bound");
        self.links.insert(port, LinkState::default());
        self.ports_of.insert(nic, port);
        port
    }

    /// Port a NIC is attached to.
    pub fn port_of(&self, nic: NicAddr) -> Option<PortId> {
        self.ports_of.get(&nic).copied()
    }

    /// Grant `vni` on the port of `nic` (fabric-manager operation invoked
    /// when a virtual network is realised on the wire).
    pub fn grant_vni(&mut self, nic: NicAddr, vni: Vni) -> bool {
        match self.port_of(nic) {
            Some(p) => {
                self.switch.grant_vni(p, vni);
                true
            }
            None => false,
        }
    }

    /// Revoke `vni` from the port of `nic`.
    pub fn revoke_vni(&mut self, nic: NicAddr, vni: Vni) -> bool {
        match self.port_of(nic) {
            Some(p) => self.switch.revoke_vni(p, vni),
            None => false,
        }
    }

    /// Per-VNI delivered-traffic counters.
    pub fn traffic(&self, vni: Vni) -> VniTraffic {
        self.traffic.get(&vni).cloned().unwrap_or_default()
    }

    /// Message-level transfer: reserves the source uplink and destination
    /// downlink, runs the switch's forwarding decision, and returns the
    /// arrival time of the last byte (cut-through pipelining: end-to-end
    /// time ≈ one serialization of the message plus constant hop costs).
#[allow(clippy::too_many_arguments)]
    pub fn transfer(
        &mut self,
        now: SimTime,
        src: NicAddr,
        dst: NicAddr,
        vni: Vni,
        tc: TrafficClass,
        len: u64,
        msg_id: u64,
    ) -> TransferOutcome {
        let Some(src_port) = self.port_of(src) else {
            return TransferOutcome::Dropped(DropReason::NoRoute);
        };
        // Representative head packet carries the routing/enforcement fields.
        let head = Packet {
            src,
            dst,
            vni,
            tc,
            payload_len: len.min(self.model.mtu as u64) as u32,
            msg_id,
            seq: 0,
            last_of_msg: self.model.packets_for(len) == 1,
        };
        let egress = match self.switch.forward(src_port, &head) {
            Verdict::Deliver(p) => p,
            Verdict::Drop(r) => return TransferOutcome::Dropped(r),
        };
        // Account the remaining packets of the message in switch counters.
        let extra_pkts = self.model.packets_for(len) - 1;
        self.switch.counters.forwarded += extra_pkts;
        self.switch.counters.forwarded_payload_bytes +=
            len.saturating_sub(head.payload_len as u64);

        let wire = self.model.wire_bytes(len);
        let ser = SimDur::from_nanos(self.model.serialize_ns(wire));
        let hop = SimDur::from_nanos(self.model.hop_latency_ns);
        let prop = SimDur::from_nanos(self.model.propagation_ns);

        let up = self.links.get_mut(&src_port).expect("attached port has link");
        let t0 = now.max(up.up_busy);
        up.up_busy = t0 + ser;
        let src_done = t0 + ser;

        // Head reaches the egress side of the switch (cut-through).
        let t_sw = t0 + prop + hop;
        let down = self.links.get_mut(&egress).expect("bound egress has link");
        let t1 = t_sw.max(down.down_busy);
        down.down_busy = t1 + ser;
        let arrival = t1 + ser + prop;

        let t = self.traffic.entry(vni).or_default();
        t.messages += 1;
        t.payload_bytes += len;
        TransferOutcome::Delivered { arrival, src_done }
    }

    /// Packet-level variant used by the packet-granular data path and the
    /// traffic-class arbitration demo. Timing mirrors [`Fabric::transfer`]
    /// for a single packet.
    pub fn send_packet(&mut self, now: SimTime, pkt: &Packet) -> TransferOutcome {
        self.transfer(now, pkt.src, pkt.dst, pkt.vni, pkt.tc, pkt.payload_len as u64, pkt.msg_id)
    }

    /// Unloaded one-way message time (no queueing): the analytic form of
    /// [`Fabric::transfer`]. Exposed for calibration tests.
    pub fn unloaded_ns(&self, len: u64) -> u64 {
        let wire = self.model.wire_bytes(len);
        self.model.serialize_ns(wire)
            + self.model.hop_latency_ns
            + 2 * self.model.propagation_ns
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric2() -> (Fabric, NicAddr, NicAddr) {
        let mut f = Fabric::new(8);
        let a = NicAddr(1);
        let b = NicAddr(2);
        f.attach(a);
        f.attach(b);
        (f, a, b)
    }

    fn granted(f: &mut Fabric, a: NicAddr, b: NicAddr, vni: Vni) {
        f.grant_vni(a, vni);
        f.grant_vni(b, vni);
    }

    #[test]
    fn delivery_needs_vni_on_both_ends() {
        let (mut f, a, b) = fabric2();
        f.grant_vni(a, Vni(7));
        let out = f.transfer(SimTime::ZERO, a, b, Vni(7), TrafficClass::Dedicated, 8, 1);
        assert_eq!(out, TransferOutcome::Dropped(DropReason::VniDeniedEgress));
        f.grant_vni(b, Vni(7));
        let out = f.transfer(SimTime::ZERO, a, b, Vni(7), TrafficClass::Dedicated, 8, 2);
        assert!(matches!(out, TransferOutcome::Delivered { .. }));
    }

    #[test]
    fn unloaded_latency_magnitude_is_sub_microsecond() {
        let (f, _, _) = fabric2();
        let ns = f.unloaded_ns(8);
        // serialization(72B)≈3ns + hop 350 + 2×20 prop ≈ 393ns.
        assert!((350..600).contains(&ns), "fabric one-way {ns}ns");
    }

    #[test]
    fn large_transfers_are_bandwidth_bound() {
        let (mut f, a, b) = fabric2();
        granted(&mut f, a, b, Vni(3));
        let len = 1u64 << 20;
        let TransferOutcome::Delivered { arrival, .. } =
            f.transfer(SimTime::ZERO, a, b, Vni(3), TrafficClass::BulkData, len, 1)
        else {
            panic!("dropped")
        };
        let gbps = len as f64 / arrival.as_nanos() as f64 * 8.0;
        assert!(gbps > 180.0 && gbps < 200.0, "effective {gbps} Gb/s");
    }

    #[test]
    fn back_to_back_transfers_queue_on_the_link() {
        let (mut f, a, b) = fabric2();
        granted(&mut f, a, b, Vni(3));
        let len = 1u64 << 16;
        let TransferOutcome::Delivered { arrival: t1, .. } =
            f.transfer(SimTime::ZERO, a, b, Vni(3), TrafficClass::BulkData, len, 1)
        else {
            panic!()
        };
        let TransferOutcome::Delivered { arrival: t2, .. } =
            f.transfer(SimTime::ZERO, a, b, Vni(3), TrafficClass::BulkData, len, 2)
        else {
            panic!()
        };
        let ser = f.model().serialize_ns(f.model().wire_bytes(len));
        assert!(t2 > t1);
        let delta = (t2 - t1).as_nanos();
        assert!(
            (delta as i64 - ser as i64).unsigned_abs() <= 2,
            "pipelined messages should be spaced by one serialization: {delta} vs {ser}"
        );
    }

    #[test]
    fn two_senders_share_receiver_downlink() {
        let mut f = Fabric::new(8);
        let (a, b, c) = (NicAddr(1), NicAddr(2), NicAddr(3));
        f.attach(a);
        f.attach(b);
        f.attach(c);
        for n in [a, b, c] {
            f.grant_vni(n, Vni(1));
        }
        let len = 1u64 << 18;
        let TransferOutcome::Delivered { arrival: t1, .. } =
            f.transfer(SimTime::ZERO, a, c, Vni(1), TrafficClass::BulkData, len, 1)
        else {
            panic!()
        };
        let TransferOutcome::Delivered { arrival: t2, .. } =
            f.transfer(SimTime::ZERO, b, c, Vni(1), TrafficClass::BulkData, len, 2)
        else {
            panic!()
        };
        // Different uplinks, same downlink: the second must serialize after
        // the first on c's downlink.
        assert!(t2 > t1);
        let ser = f.model().serialize_ns(f.model().wire_bytes(len));
        assert!((t2 - t1).as_nanos() >= ser - 2);
    }

    #[test]
    fn traffic_counters_track_delivered_only() {
        let (mut f, a, b) = fabric2();
        granted(&mut f, a, b, Vni(9));
        f.transfer(SimTime::ZERO, a, b, Vni(9), TrafficClass::Dedicated, 100, 1);
        // This one is dropped: no grant for VNI 10.
        f.transfer(SimTime::ZERO, a, b, Vni(10), TrafficClass::Dedicated, 100, 2);
        assert_eq!(f.traffic(Vni(9)).messages, 1);
        assert_eq!(f.traffic(Vni(9)).payload_bytes, 100);
        assert_eq!(f.traffic(Vni(10)).messages, 0);
    }

    #[test]
    fn unattached_nic_cannot_send() {
        let (mut f, _, b) = fabric2();
        let ghost = NicAddr(99);
        let out = f.transfer(SimTime::ZERO, ghost, b, Vni(1), TrafficClass::Dedicated, 8, 1);
        assert_eq!(out, TransferOutcome::Dropped(DropReason::NoRoute));
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn double_attach_panics() {
        let (mut f, a, _) = fabric2();
        f.attach(a);
    }

    #[test]
    fn revoke_stops_future_traffic() {
        let (mut f, a, b) = fabric2();
        granted(&mut f, a, b, Vni(4));
        assert!(matches!(
            f.transfer(SimTime::ZERO, a, b, Vni(4), TrafficClass::Dedicated, 8, 1),
            TransferOutcome::Delivered { .. }
        ));
        f.revoke_vni(b, Vni(4));
        assert_eq!(
            f.transfer(SimTime::ZERO, a, b, Vni(4), TrafficClass::Dedicated, 8, 2),
            TransferOutcome::Dropped(DropReason::VniDeniedEgress)
        );
    }

    #[test]
    fn switch_counters_count_message_packets() {
        let (mut f, a, b) = fabric2();
        granted(&mut f, a, b, Vni(2));
        let len = 10_000u64; // 5 packets at 2 KiB MTU
        f.transfer(SimTime::ZERO, a, b, Vni(2), TrafficClass::Dedicated, len, 1);
        assert_eq!(f.switch().counters.forwarded, 5);
        assert_eq!(f.switch().counters.forwarded_payload_bytes, len);
    }
}
