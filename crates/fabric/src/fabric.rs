//! The fabric engine: a dragonfly [`Topology`] of switches (NICs on
//! edge ports, local links within a group, global links between
//! groups), the cut-through timing model for message delivery, and the
//! per-link occupancy that produces queueing effects.
//!
//! Edge (NIC↔switch) links keep the original scalar busy-until
//! semantics, so a 1-group × 1-switch topology is byte-for-byte the
//! legacy single-switch fabric. Inter-switch (*trunk*) links add what
//! the paper's multi-tenant story needs: **per-traffic-class weighted
//! scheduling** (the message-level counterpart of the packet-level
//! [`crate::switch::WrrArbiter`], modeled as weighted processor
//! sharing over the four classes) and **finite per-class queues** whose
//! overflow is a congestion drop, counted per hop, per class, and per
//! tenant VNI.

use std::collections::BTreeMap;

use shs_des::{SimDur, SimTime};

use crate::faults::{repair_route, FaultKind, LivenessMask, MAX_REPAIR_PATH};
use crate::packet::{CostModel, Packet};
use crate::switch::{DropReason, Switch, SwitchConfig};
use crate::topology::{RoutingPolicy, Topology, TopologySpec};
use crate::types::{NicAddr, PortId, SwitchId, TrafficClass, Vni};

/// Per-port edge-link occupancy (full duplex: separate up/down
/// directions), with the legacy scalar busy-until semantics. Shared
/// with the sharded engine in [`crate::shardsim`], which models the
/// same edge links per group.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LinkState {
    /// Node→switch direction busy until this instant.
    pub(crate) up_busy: SimTime,
    /// Switch→node direction busy until this instant.
    pub(crate) down_busy: SimTime,
}

/// Per-traffic-class counters of one directed trunk link (or, via
/// [`Fabric::trunk_class_totals`], of all of them).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrunkClassCounters {
    /// Messages that traversed the link on this class.
    pub messages: u64,
    /// Payload bytes carried.
    pub payload_bytes: u64,
    /// Messages dropped because the class queue exceeded the cost
    /// model's `trunk_queue_ns` bound.
    pub congestion_drops: u64,
    /// Worst queueing delay a message of this class accepted (ns).
    pub queued_ns_max: u64,
}

/// One directed inter-switch link: per-class busy horizons (the
/// weighted-sharing state) plus per-class counters. The timing math
/// lives in [`TrunkState::traverse`] so the serial [`Fabric`] and the
/// sharded engine ([`crate::shardsim`]) stay bit-identical per hop.
#[derive(Debug, Clone, Default)]
pub(crate) struct TrunkState {
    cls_busy: [SimTime; 4],
    pub(crate) counters: [TrunkClassCounters; 4],
}

impl TrunkState {
    /// One message crossing this directed trunk: the per-class
    /// finite-queue check plus weighted-processor-sharing bookkeeping.
    /// Returns `(start, finish)` — the instants the head enters the
    /// link and the last byte clears it at the class's weighted share
    /// of the link rate — or `Err(queued_ns)` when the class queue
    /// exceeds `queue_bound_ns` (the congestion drop is already
    /// counted on this trunk; the caller books tenant/switch counters).
    pub(crate) fn traverse(
        &mut self,
        tc: TrafficClass,
        ser_ns: u64,
        len: u64,
        head_t: SimTime,
        queue_bound_ns: u64,
    ) -> Result<(SimTime, SimTime), u64> {
        let cls = tc.index();
        let start = head_t.max(self.cls_busy[cls]);
        let queued_ns = (start - head_t).as_nanos();
        if queued_ns > queue_bound_ns {
            self.counters[cls].congestion_drops += 1;
            return Err(queued_ns);
        }
        // Weighted processor sharing across the classes backlogged at
        // `start`: class `tc` drains at weight(tc)/Σ weights of the
        // link rate, so its serialization stretches by the inverse
        // share (1x when it has the trunk to itself).
        let active: u64 = TrafficClass::ALL
            .iter()
            .filter(|c| c.index() == cls || self.cls_busy[c.index()] > start)
            .map(|c| c.weight() as u64)
            .sum();
        let ser_eff = SimDur::from_nanos(ser_ns * active / tc.weight() as u64);
        self.cls_busy[cls] = start + ser_eff;
        self.counters[cls].messages += 1;
        self.counters[cls].payload_bytes += len;
        self.counters[cls].queued_ns_max = self.counters[cls].queued_ns_max.max(queued_ns);
        Ok((start, start + ser_eff))
    }

    /// Current queue depth of one class in ns: how long a message of
    /// this class injected at `now` would wait before its head enters
    /// the link. The live-occupancy signal UGAL routing decides on.
    pub(crate) fn queue_ns(&self, tc: TrafficClass, now: SimTime) -> u64 {
        let busy = self.cls_busy[tc.index()];
        if busy > now {
            (busy - now).as_nanos()
        } else {
            0
        }
    }
}

/// Outcome of a message-level transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TransferOutcome {
    /// The message will fully arrive at the destination NIC at `arrival`.
    Delivered {
        /// Arrival instant of the last byte at the destination NIC.
        arrival: SimTime,
        /// Instant the last byte left the source NIC (uplink released);
        /// this is when the sender's local RDMA completion can fire.
        src_done: SimTime,
    },
    /// Silently dropped in the fabric (VNI enforcement, routing,
    /// congestion management, ...).
    Dropped(DropReason),
}

/// Fabric-level traffic accounting, keyed by VNI (the granularity the
/// fabric manager exposes to monitoring). Per-hop congestion and drop
/// counters roll up here per tenant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VniTraffic {
    /// Delivered messages.
    pub messages: u64,
    /// Delivered payload bytes.
    pub payload_bytes: u64,
    /// Messages dropped by trunk congestion management.
    pub congestion_drops: u64,
    /// Total switch hops of delivered messages (1 per message on a
    /// single-switch fabric).
    pub switch_hops: u64,
    /// Delivered messages per traffic class, in
    /// [`TrafficClass::index`] order.
    pub class_messages: [u64; 4],
    /// Delivered messages that took a route other than the policy's
    /// first choice because a fault killed it (deterministic reroute).
    pub reroutes: u64,
    /// ECN marks accrued by this tenant's messages: trunk hops accepted
    /// after queueing past the cost model's `ecn_threshold_ns`. Zero
    /// unless the threshold is lowered below the drop bound.
    pub ecn_marks: u64,
}

/// Errors surfaced by fabric-manager operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricError {
    /// The NIC is not attached to any switch port.
    UnknownNic(NicAddr),
}

impl core::fmt::Display for FabricError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            FabricError::UnknownNic(nic) => write!(f, "{nic} is not attached to the fabric"),
        }
    }
}

impl std::error::Error for FabricError {}

/// Anomalous fabric-manager operations, recorded for the audit trail
/// (a revoke that cannot have removed anything is either a cleanup bug
/// or an operator racing node removal — either way worth a log line).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FabricAuditEvent {
    /// A revoke named a NIC that is not attached anywhere.
    RevokeUnknownNic {
        /// The unknown NIC.
        nic: NicAddr,
        /// The VNI named by the revoke.
        vni: Vni,
    },
    /// A revoke named a VNI that was never granted (or already revoked)
    /// on the NIC's port.
    RevokeNeverGranted {
        /// The attached NIC.
        nic: NicAddr,
        /// The VNI that held no grant.
        vni: Vni,
    },
}

/// The Slingshot fabric: topology, switches, links, timing.
#[derive(Debug)]
pub struct Fabric {
    model: CostModel,
    topo: Topology,
    switches: Vec<Switch>,
    /// Edge-link occupancy, indexed `[switch][edge port]` (rows grow on
    /// attach; a reattached port's slot is reset to a fresh link).
    links: Vec<Vec<LinkState>>,
    /// Directed trunk-link state, in [`Topology::trunk_links`] order.
    trunks: Vec<TrunkState>,
    /// Dense `(from, to) → trunks` index (`from * n + to`), `u32::MAX`
    /// where no trunk exists. Turns the per-hop trunk lookup into two
    /// array indexings.
    trunk_idx: Vec<u32>,
    /// NIC attachment points, sorted by NIC (binary search; attach and
    /// detach are cold, lookups are per-transfer).
    ports_of: Vec<(NicAddr, (usize, PortId))>,
    /// Next never-used edge port per switch.
    next_port: Vec<usize>,
    /// Edge ports freed by [`Fabric::detach`], reused LIFO per switch.
    free_ports: Vec<Vec<usize>>,
    /// Per-VNI counters, sorted by VNI (binary search; tenant counts are
    /// small and reads never iterate).
    traffic: Vec<(Vni, VniTraffic)>,
    audit: Vec<FabricAuditEvent>,
    /// Runtime fault state. Empty on a healthy fabric — route selection
    /// then takes the interned fast path untouched.
    liveness: LivenessMask,
    /// BFS repair routes computed since the last fault event, keyed by
    /// `(src switch, dst switch)`; `None` caches "partitioned". Cleared
    /// by [`Fabric::apply_fault`].
    repair_cache: BTreeMap<(u32, u32), Option<Vec<SwitchId>>>,
    /// ECN marks awaiting pickup by the sending NIC, per source NIC.
    /// Consumed (and cleared) by [`Fabric::take_ecn_marks`].
    ecn_feedback: BTreeMap<NicAddr, u64>,
}

impl Fabric {
    /// Build a single-switch fabric with default cost model and switch
    /// configuration (the legacy constructor).
    pub fn new(ports: usize) -> Self {
        Fabric::with_config(CostModel::default(), SwitchConfig { ports, ..Default::default() })
    }

    /// Build a single-switch fabric with explicit cost model and switch
    /// configuration.
    pub fn with_config(model: CostModel, switch_config: SwitchConfig) -> Self {
        Fabric::build(
            model,
            Topology::new(TopologySpec::single_switch(switch_config.ports), RoutingPolicy::Minimal),
            switch_config,
        )
    }

    /// Build a multi-switch fabric over a dragonfly topology with the
    /// default switch configuration (VNI enforcement + source checks on).
    pub fn with_topology(model: CostModel, spec: TopologySpec, policy: RoutingPolicy) -> Self {
        let switch_config = SwitchConfig { ports: spec.edge_ports, ..Default::default() };
        Fabric::build(model, Topology::new(spec, policy), switch_config)
    }

    fn build(model: CostModel, topo: Topology, switch_config: SwitchConfig) -> Self {
        let n = topo.switch_count();
        let switches = (0..n).map(|_| Switch::new(switch_config.clone())).collect();
        let links = topo.trunk_links();
        let mut trunk_idx = vec![u32::MAX; n * n];
        for (i, &(a, b)) in links.iter().enumerate() {
            trunk_idx[a.0 * n + b.0] = i as u32;
        }
        Fabric {
            model,
            topo,
            switches,
            links: vec![Vec::new(); n],
            trunks: vec![TrunkState::default(); links.len()],
            trunk_idx,
            ports_of: Vec::new(),
            next_port: vec![0; n],
            free_ports: vec![Vec::new(); n],
            traffic: Vec::new(),
            audit: Vec::new(),
            liveness: LivenessMask::default(),
            repair_cache: BTreeMap::new(),
            ecn_feedback: BTreeMap::new(),
        }
    }

    /// Attachment point of a NIC, if attached.
    #[inline]
    fn lookup_nic(&self, nic: NicAddr) -> Option<(usize, PortId)> {
        self.ports_of
            .binary_search_by_key(&nic, |&(n, _)| n)
            .ok()
            .map(|i| self.ports_of[i].1)
    }

    /// Per-VNI counter slot, created zeroed on first touch.
    fn traffic_mut(&mut self, vni: Vni) -> &mut VniTraffic {
        let i = match self.traffic.binary_search_by_key(&vni, |&(v, _)| v) {
            Ok(i) => i,
            Err(i) => {
                self.traffic.insert(i, (vni, VniTraffic::default()));
                i
            }
        };
        &mut self.traffic[i].1
    }

    /// The cost model in force.
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// The topology in force.
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Access the first switch — the only one in single-switch fabrics
    /// (kept for the legacy monitoring surface; multi-switch callers use
    /// [`Fabric::switch_at`]).
    pub fn switch(&self) -> &Switch {
        &self.switches[0]
    }

    /// Mutable access to the first switch (fabric-manager operations on
    /// single-switch fabrics).
    pub fn switch_mut(&mut self) -> &mut Switch {
        &mut self.switches[0]
    }

    /// Access one switch of the topology.
    pub fn switch_at(&self, sw: SwitchId) -> &Switch {
        &self.switches[sw.0]
    }

    /// All switches, in id order.
    pub fn switches(&self) -> impl Iterator<Item = &Switch> {
        self.switches.iter()
    }

    /// Anomalous fabric-manager operations recorded so far.
    pub fn audit(&self) -> &[FabricAuditEvent] {
        &self.audit
    }

    /// Attach a NIC to the next free edge port of switch 0 (the legacy
    /// single-switch call). Panics if the switch is full or the NIC is
    /// already attached (both are wiring bugs).
    pub fn attach(&mut self, nic: NicAddr) -> PortId {
        self.attach_to(nic, SwitchId(0))
    }

    /// Attach a NIC to the next free edge port of `sw` (ports freed by
    /// [`Fabric::detach`] are reused first). Panics if the switch is
    /// full or the NIC is already attached.
    pub fn attach_to(&mut self, nic: NicAddr, sw: SwitchId) -> PortId {
        let slot = match self.ports_of.binary_search_by_key(&nic, |&(n, _)| n) {
            Ok(_) => panic!("{nic} attached twice"),
            Err(i) => i,
        };
        let port = match self.free_ports[sw.0].pop() {
            Some(freed) => PortId(freed),
            None => {
                let p = PortId(self.next_port[sw.0]);
                self.next_port[sw.0] += 1;
                p
            }
        };
        assert!(self.switches[sw.0].bind(port, nic), "{sw} {port} already bound");
        let row = &mut self.links[sw.0];
        if row.len() <= port.0 {
            row.resize(port.0 + 1, LinkState::default());
        }
        // A reattached port starts with a fresh (idle) link.
        row[port.0] = LinkState::default();
        self.ports_of.insert(slot, (nic, (sw.0, port)));
        port
    }

    /// Detach a NIC (node removal): unbind its edge port, drop its VNI
    /// grants, and forget the attachment and link state. Returns whether
    /// the NIC was attached. The freed port is reused by later attaches.
    pub fn detach(&mut self, nic: NicAddr) -> bool {
        let Ok(i) = self.ports_of.binary_search_by_key(&nic, |&(n, _)| n) else {
            return false;
        };
        let (_, (sw, port)) = self.ports_of.remove(i);
        self.switches[sw].unbind(port);
        // Drop the port's edge-link busy horizon and any ECN feedback the
        // departed NIC never collected: a message still serializing on a
        // trunk when its sender detaches must not leave state behind that
        // a later attach on the recycled port (or address) would inherit
        // — per-VNI counters stay exactly as booked at delivery time.
        self.links[sw][port.0] = LinkState::default();
        self.ecn_feedback.remove(&nic);
        self.free_ports[sw].push(port.0);
        true
    }

    /// Edge port a NIC is attached to (on its switch).
    pub fn port_of(&self, nic: NicAddr) -> Option<PortId> {
        self.lookup_nic(nic).map(|(_, p)| p)
    }

    /// Full attachment point of a NIC: (switch, edge port).
    pub fn attachment(&self, nic: NicAddr) -> Option<(SwitchId, PortId)> {
        self.lookup_nic(nic).map(|(s, p)| (SwitchId(s), p))
    }

    /// Grant `vni` on the edge port of `nic` (fabric-manager operation
    /// invoked when a virtual network is realised on the wire). Granting
    /// on a NIC the fabric does not know is a wiring or orchestration
    /// bug and is an explicit error.
    pub fn grant_vni(&mut self, nic: NicAddr, vni: Vni) -> Result<PortId, FabricError> {
        let (sw, port) = self.lookup_nic(nic).ok_or(FabricError::UnknownNic(nic))?;
        self.switches[sw].grant_vni(port, vni);
        Ok(port)
    }

    /// Revoke `vni` from the edge port of `nic`. Returns whether a grant
    /// was actually removed; revokes that cannot have removed anything
    /// (unknown NIC, never-granted VNI) are recorded in the fabric
    /// [`audit`](Fabric::audit) log.
    pub fn revoke_vni(&mut self, nic: NicAddr, vni: Vni) -> bool {
        let Some((sw, port)) = self.lookup_nic(nic) else {
            self.audit.push(FabricAuditEvent::RevokeUnknownNic { nic, vni });
            return false;
        };
        let removed = self.switches[sw].revoke_vni(port, vni);
        if !removed {
            self.audit.push(FabricAuditEvent::RevokeNeverGranted { nic, vni });
        }
        removed
    }

    /// Whether the edge port of `nic` currently holds a grant for `vni`.
    pub fn nic_has_vni(&self, nic: NicAddr, vni: Vni) -> bool {
        self.lookup_nic(nic)
            .is_some_and(|(sw, port)| self.switches[sw].has_vni(port, vni))
    }

    /// Per-VNI delivered-traffic counters (`VniTraffic` is `Copy`; no
    /// per-read clone).
    pub fn traffic(&self, vni: Vni) -> VniTraffic {
        match self.traffic.binary_search_by_key(&vni, |&(v, _)| v) {
            Ok(i) => self.traffic[i].1,
            Err(_) => VniTraffic::default(),
        }
    }

    /// Per-class counters of one directed trunk link, if it exists.
    pub fn trunk_counters(&self, from: SwitchId, to: SwitchId) -> Option<&[TrunkClassCounters; 4]> {
        let n = self.topo.switch_count();
        match self.trunk_idx.get(from.0 * n + to.0) {
            Some(&i) if i != u32::MAX => Some(&self.trunks[i as usize].counters),
            _ => None,
        }
    }

    /// Per-class counters summed over every directed trunk link, in
    /// [`TrafficClass::index`] order.
    pub fn trunk_class_totals(&self) -> [TrunkClassCounters; 4] {
        let mut out = [TrunkClassCounters::default(); 4];
        for trunk in self.trunks.iter() {
            for (acc, c) in out.iter_mut().zip(trunk.counters.iter()) {
                acc.messages += c.messages;
                acc.payload_bytes += c.payload_bytes;
                acc.congestion_drops += c.congestion_drops;
                acc.queued_ns_max = acc.queued_ns_max.max(c.queued_ns_max);
            }
        }
        out
    }

    /// Apply a runtime fault event (scheduled through the DES by the
    /// scenario engine): the liveness mask flips and every cached
    /// repair route is invalidated. Interned route arenas are never
    /// rebuilt — dead candidates are filtered per transfer.
    pub fn apply_fault(&mut self, kind: FaultKind) {
        self.liveness.apply(kind);
        self.repair_cache.clear();
    }

    /// The current liveness mask (empty on a healthy fabric).
    pub fn liveness(&self) -> &LivenessMask {
        &self.liveness
    }

    /// Take (and clear) the ECN marks accrued against `nic`'s messages
    /// since the last call — the sender-pacing feedback loop the Cassini
    /// NIC model consumes before issuing its next message.
    pub fn take_ecn_marks(&mut self, nic: NicAddr) -> u64 {
        self.ecn_feedback.remove(&nic).unwrap_or(0)
    }

    /// Per-VNI counters summed over every tenant (monitoring roll-up;
    /// `queued`-style maxima do not exist here, all fields are sums).
    pub fn traffic_totals(&self) -> VniTraffic {
        let mut out = VniTraffic::default();
        for (_, t) in self.traffic.iter() {
            out.messages += t.messages;
            out.payload_bytes += t.payload_bytes;
            out.congestion_drops += t.congestion_drops;
            out.switch_hops += t.switch_hops;
            for i in 0..4 {
                out.class_messages[i] += t.class_messages[i];
            }
            out.reroutes += t.reroutes;
            out.ecn_marks += t.ecn_marks;
        }
        out
    }

    /// Message-level transfer: enforcement at the source and destination
    /// edge switches, deterministic routing over the topology, link
    /// reservation hop by hop, and the arrival time of the last byte
    /// (cut-through pipelining: end-to-end time ≈ one serialization of
    /// the message plus per-hop constants, plus any queueing).
    #[allow(clippy::too_many_arguments)]
    pub fn transfer(
        &mut self,
        now: SimTime,
        src: NicAddr,
        dst: NicAddr,
        vni: Vni,
        tc: TrafficClass,
        len: u64,
        msg_id: u64,
    ) -> TransferOutcome {
        let Some((ssw, sport)) = self.lookup_nic(src) else {
            return TransferOutcome::Dropped(DropReason::NoRoute);
        };
        // Representative head packet carries the routing/enforcement fields.
        let head = Packet {
            src,
            dst,
            vni,
            tc,
            payload_len: len.min(self.model.mtu as u64) as u32,
            msg_id,
            seq: 0,
            last_of_msg: self.model.packets_for(len) == 1,
        };
        // Ingress enforcement at the source edge switch.
        if let Some(reason) = self.switches[ssw].admit(sport, &head) {
            return TransferOutcome::Dropped(reason);
        }
        let Some((dsw, dport)) = self.lookup_nic(dst) else {
            return TransferOutcome::Dropped(self.switches[ssw].note_drop(DropReason::NoRoute));
        };
        // The destination switch's routing table stays authoritative: a
        // NIC unbound there (node removal via `Switch::unbind`) must drop
        // NoRoute exactly as the single-switch forward path did.
        if self.switches[dsw].route_to(dst) != Some(dport) {
            return TransferOutcome::Dropped(self.switches[dsw].note_drop(DropReason::NoRoute));
        }
        // Egress enforcement at the destination edge switch.
        if let Some(reason) = self.switches[dsw].egress_check(dport, &head) {
            return TransferOutcome::Dropped(reason);
        }

        let wire = self.model.wire_bytes(len);
        let ser_ns = self.model.serialize_ns(wire);
        let ser = SimDur::from_nanos(ser_ns);
        let hop = SimDur::from_nanos(self.model.hop_latency_ns);
        let prop = SimDur::from_nanos(self.model.propagation_ns);

        let up = &mut self.links[ssw][sport.0];
        let t0 = now.max(up.up_busy);
        up.up_busy = t0 + ser;
        let src_done = t0 + ser;

        // Head reaches the egress side of the first switch (cut-through).
        let mut head_t = t0 + prop + hop;

        let pkts = self.model.packets_for(len);
        let mut hops = 1u64;
        // Last byte's progress through the pipeline: a trunk carrying the
        // message at a weighted share of the link rate holds the tail
        // back, so contended classes see their serialization stretch in
        // the reported arrival, not only in the trunk's busy horizon.
        let mut tail_t = src_done;
        // ECN marks accrued on this message (a trunk accepted it after
        // queueing past `ecn_threshold_ns`) and whether the route was a
        // failure reroute; both are booked per tenant at delivery.
        let mut ecn_marks = 0u64;
        let mut rerouted = false;
        if ssw == dsw {
            // Same-switch fast path (every legacy single-switch fabric):
            // no route to compute, no trunks to schedule, no allocation.
            self.switches[ssw].note_forwarded(pkts, len);
        } else {
            // Trunk hops: per-class weighted scheduling, finite queue.
            // Forwarded counts are booked progressively — a switch counts
            // the message only once it has cleared that switch's outbound
            // trunk — so per-switch and per-trunk totals reconcile even
            // when a later hop congestion-drops the message. Minimal
            // routing walks the precomputed next-hop table directly;
            // Valiant copies its interned detour route onto the stack
            // (≤ 6 switch ids). Neither allocates.
            let step = SimDur::from_nanos(self.model.propagation_ns + self.model.hop_latency_ns);
            let healthy = self.liveness.is_empty();
            match self.topo.policy() {
                RoutingPolicy::Minimal if healthy => {
                    let mut a = ssw;
                    while a != dsw {
                        let b = self.topo.next_hop_min(SwitchId(a), SwitchId(dsw)).0;
                        let (start, finish) =
                            match self.traverse_trunk(a, b, tc, ser_ns, len, vni, head_t) {
                                Ok(t) => t,
                                Err(outcome) => return outcome,
                            };
                        if (start - head_t).as_nanos() > self.model.ecn_threshold_ns {
                            ecn_marks += 1;
                        }
                        head_t = start + step;
                        tail_t = (tail_t + prop).max(finish);
                        self.switches[a].note_forwarded(pkts, len);
                        hops += 1;
                        a = b;
                    }
                }
                RoutingPolicy::Valiant if healthy => {
                    let mut route_buf = [SwitchId(0); 6];
                    let cached = self.topo.route(SwitchId(ssw), SwitchId(dsw), msg_id);
                    let path = &mut route_buf[..cached.len()];
                    path.copy_from_slice(cached);
                    hops = path.len() as u64;
                    for w in path.windows(2) {
                        let (a, b) = (w[0].0, w[1].0);
                        let (start, finish) =
                            match self.traverse_trunk(a, b, tc, ser_ns, len, vni, head_t) {
                                Ok(t) => t,
                                Err(outcome) => return outcome,
                            };
                        if (start - head_t).as_nanos() > self.model.ecn_threshold_ns {
                            ecn_marks += 1;
                        }
                        head_t = start + step;
                        tail_t = (tail_t + prop).max(finish);
                        self.switches[a].note_forwarded(pkts, len);
                    }
                }
                _ => {
                    // Adaptive routing, or any policy on a degraded
                    // fabric: pick the route once at injection (UGAL
                    // choice and/or deterministic failure fallback),
                    // then walk it like the interned-route path above.
                    let mut route_buf = [SwitchId(0); MAX_REPAIR_PATH];
                    let Some((plen, rr)) = self.select_route(
                        SwitchId(ssw),
                        SwitchId(dsw),
                        tc,
                        msg_id,
                        now,
                        &mut route_buf,
                    ) else {
                        return TransferOutcome::Dropped(
                            self.switches[ssw].note_drop(DropReason::NoRoute),
                        );
                    };
                    rerouted = rr;
                    hops = plen as u64;
                    for i in 1..plen {
                        let (a, b) = (route_buf[i - 1].0, route_buf[i].0);
                        let (start, finish) =
                            match self.traverse_trunk(a, b, tc, ser_ns, len, vni, head_t) {
                                Ok(t) => t,
                                Err(outcome) => return outcome,
                            };
                        if (start - head_t).as_nanos() > self.model.ecn_threshold_ns {
                            ecn_marks += 1;
                        }
                        head_t = start + step;
                        tail_t = (tail_t + prop).max(finish);
                        self.switches[a].note_forwarded(pkts, len);
                    }
                }
            }

            // The destination edge switch forwards onto its downlink.
            self.switches[dsw].note_forwarded(pkts, len);
        }

        let down = &mut self.links[dsw][dport.0];
        let t1 = head_t.max(down.down_busy);
        down.down_busy = t1 + ser;
        // The last byte reaches the NIC after both the downlink's own
        // serialization and the slowest upstream stage have released it.
        // On a single switch `t1 + ser` always dominates (t1 ≥ t0 + prop
        // + hop), so the legacy formula is preserved bit for bit.
        let arrival = (t1 + ser).max(tail_t + prop) + prop;

        let t = self.traffic_mut(vni);
        t.messages += 1;
        t.payload_bytes += len;
        t.switch_hops += hops;
        t.class_messages[tc.index()] += 1;
        t.reroutes += rerouted as u64;
        t.ecn_marks += ecn_marks;
        if ecn_marks > 0 {
            *self.ecn_feedback.entry(src).or_insert(0) += ecn_marks;
        }
        TransferOutcome::Delivered { arrival, src_done }
    }

    /// Route selection for the adaptive/degraded path of
    /// [`Fabric::transfer`]: the policy's primary route (for
    /// [`RoutingPolicy::Adaptive`], the UGAL choice between minimal and
    /// the salted Valiant detour) when it is fully live, else the
    /// deterministic failure fallback — minimal, then every Valiant salt
    /// class in `salt`-relative order, then a cached BFS repair over the
    /// live graph. Copies the chosen route into `buf` and returns its
    /// length plus whether it was a failure reroute; `None` means the
    /// pair is partitioned (the caller drops `NoRoute`).
    fn select_route(
        &mut self,
        ssw: SwitchId,
        dsw: SwitchId,
        tc: TrafficClass,
        salt: u64,
        now: SimTime,
        buf: &mut [SwitchId; MAX_REPAIR_PATH],
    ) -> Option<(usize, bool)> {
        let (plen, live) = {
            let primary: &[SwitchId] = match self.topo.policy() {
                RoutingPolicy::Minimal => self.topo.route_minimal(ssw, dsw),
                RoutingPolicy::Valiant => self.topo.route_valiant(ssw, dsw, salt),
                RoutingPolicy::Adaptive => {
                    let min = self.topo.route_minimal(ssw, dsw);
                    let val = self.topo.route_valiant(ssw, dsw, salt);
                    if self.ugal_prefers_valiant(min, val, tc, now) {
                        val
                    } else {
                        min
                    }
                }
            };
            buf[..primary.len()].copy_from_slice(primary);
            (primary.len(), self.liveness.route_live(primary))
        };
        if live {
            return Some((plen, false));
        }
        // Deterministic fallback order, independent of queue state so
        // serial and sharded runs agree: the minimal route first.
        let min = self.topo.route_minimal(ssw, dsw);
        if self.liveness.route_live(min) {
            buf[..min.len()].copy_from_slice(min);
            return Some((min.len(), true));
        }
        // Then every Valiant salt class, starting from the message's own
        // and wrapping (a no-op below 3 groups, where every class
        // degrades to the minimal route just rejected).
        let classes = self.topo.salt_classes() as u64;
        if self.topo.groups() >= 3 {
            for k in 0..classes {
                let val = self.topo.route_valiant(ssw, dsw, (salt + k) % classes);
                if self.liveness.route_live(val) {
                    buf[..val.len()].copy_from_slice(val);
                    return Some((val.len(), true));
                }
            }
        }
        // Last resort: BFS over the live graph, cached per pair until
        // the next fault event clears the cache.
        let key = (ssw.0 as u32, dsw.0 as u32);
        let repaired = match self.repair_cache.get(&key) {
            Some(r) => r.clone(),
            None => {
                let r = repair_route(&self.topo, &self.liveness, ssw, dsw);
                self.repair_cache.insert(key, r.clone());
                r
            }
        };
        let path = repaired?;
        buf[..path.len()].copy_from_slice(&path);
        Some((path.len(), true))
    }

    /// The UGAL-L decision: detour onto the salted Valiant route only
    /// when the minimal path's cost — first-trunk queue depth × path
    /// switch count — exceeds the detour's by more than the cost model's
    /// `adaptive_bias_ns`. Only locally-observable state is consulted
    /// (the candidate's first trunk hop), mirroring what a Rosetta
    /// ingress port can see at injection time.
    fn ugal_prefers_valiant(
        &self,
        min: &[SwitchId],
        val: &[SwitchId],
        tc: TrafficClass,
        now: SimTime,
    ) -> bool {
        if val.len() <= min.len() {
            // Degenerate detour (< 3 groups or same-group pair): the
            // Valiant arena degraded to the minimal route.
            return false;
        }
        let n = self.topo.switch_count();
        let first_q = |path: &[SwitchId]| -> u64 {
            let ti = self.trunk_idx[path[0].0 * n + path[1].0];
            debug_assert!(ti != u32::MAX, "route follows topology links");
            self.trunks[ti as usize].queue_ns(tc, now)
        };
        first_q(min) * min.len() as u64
            > first_q(val) * val.len() as u64 + self.model.adaptive_bias_ns
    }

    /// One trunk hop of [`Fabric::transfer`]: the per-class finite-queue
    /// check plus weighted-sharing bookkeeping on the directed link
    /// `a → b`. Returns `(start, finish)` — the instants the head enters
    /// the link and the last byte clears it at the class's weighted
    /// share of the link rate — or the congestion-drop outcome (already
    /// counted per hop, per class and per tenant).
    #[allow(clippy::too_many_arguments)]
    fn traverse_trunk(
        &mut self,
        a: usize,
        b: usize,
        tc: TrafficClass,
        ser_ns: u64,
        len: u64,
        vni: Vni,
        head_t: SimTime,
    ) -> Result<(SimTime, SimTime), TransferOutcome> {
        let n = self.topo.switch_count();
        let ti = self.trunk_idx[a * n + b];
        debug_assert!(ti != u32::MAX, "route follows topology links");
        match self.trunks[ti as usize].traverse(tc, ser_ns, len, head_t, self.model.trunk_queue_ns)
        {
            Ok(window) => Ok(window),
            Err(_queued_ns) => {
                self.traffic_mut(vni).congestion_drops += 1;
                Err(TransferOutcome::Dropped(self.switches[a].note_drop(DropReason::Congested)))
            }
        }
    }

    /// Packet-level variant used by the packet-granular data path and the
    /// traffic-class arbitration demo. Timing mirrors [`Fabric::transfer`]
    /// for a single packet.
    pub fn send_packet(&mut self, now: SimTime, pkt: &Packet) -> TransferOutcome {
        self.transfer(now, pkt.src, pkt.dst, pkt.vni, pkt.tc, pkt.payload_len as u64, pkt.msg_id)
    }

    /// Unloaded one-way message time (no queueing) across a same-switch
    /// path: the analytic form of [`Fabric::transfer`] on a single
    /// switch. Exposed for calibration tests.
    pub fn unloaded_ns(&self, len: u64) -> u64 {
        let wire = self.model.wire_bytes(len);
        self.model.serialize_ns(wire)
            + self.model.hop_latency_ns
            + 2 * self.model.propagation_ns
    }

    /// Unloaded one-way time between two attached NICs, accounting every
    /// switch hop and link of the **minimal** route. Returns `None` when
    /// either NIC is unattached. Under [`RoutingPolicy::Valiant`] actual
    /// transfers may detour and exceed this even on an idle fabric — it
    /// is the minimal-path calibration floor, not a per-message oracle.
    pub fn unloaded_route_ns(&self, src: NicAddr, dst: NicAddr, len: u64) -> Option<u64> {
        let (ssw, _) = self.lookup_nic(src)?;
        let (dsw, _) = self.lookup_nic(dst)?;
        let hops = self.topo.route_minimal(SwitchId(ssw), SwitchId(dsw)).len() as u64;
        let wire = self.model.wire_bytes(len);
        Some(
            self.model.serialize_ns(wire)
                + hops * self.model.hop_latency_ns
                + (hops + 1) * self.model.propagation_ns,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fabric2() -> (Fabric, NicAddr, NicAddr) {
        let mut f = Fabric::new(8);
        let a = NicAddr(1);
        let b = NicAddr(2);
        f.attach(a);
        f.attach(b);
        (f, a, b)
    }

    fn granted(f: &mut Fabric, a: NicAddr, b: NicAddr, vni: Vni) {
        f.grant_vni(a, vni).unwrap();
        f.grant_vni(b, vni).unwrap();
    }

    /// 2 groups × 1 switch × 4 edge ports, one NIC per switch, both
    /// granted the VNI.
    fn cross_group() -> (Fabric, NicAddr, NicAddr) {
        let mut f = Fabric::with_topology(
            CostModel::default(),
            TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 4 },
            RoutingPolicy::Minimal,
        );
        let a = NicAddr(1);
        let b = NicAddr(2);
        f.attach_to(a, SwitchId(0));
        f.attach_to(b, SwitchId(1));
        granted(&mut f, a, b, Vni(7));
        (f, a, b)
    }

    #[test]
    fn delivery_needs_vni_on_both_ends() {
        let (mut f, a, b) = fabric2();
        f.grant_vni(a, Vni(7)).unwrap();
        let out = f.transfer(SimTime::ZERO, a, b, Vni(7), TrafficClass::Dedicated, 8, 1);
        assert_eq!(out, TransferOutcome::Dropped(DropReason::VniDeniedEgress));
        f.grant_vni(b, Vni(7)).unwrap();
        let out = f.transfer(SimTime::ZERO, a, b, Vni(7), TrafficClass::Dedicated, 8, 2);
        assert!(matches!(out, TransferOutcome::Delivered { .. }));
    }

    #[test]
    fn unloaded_latency_magnitude_is_sub_microsecond() {
        let (f, _, _) = fabric2();
        let ns = f.unloaded_ns(8);
        // serialization(72B)≈3ns + hop 350 + 2×20 prop ≈ 393ns.
        assert!((350..600).contains(&ns), "fabric one-way {ns}ns");
    }

    #[test]
    fn large_transfers_are_bandwidth_bound() {
        let (mut f, a, b) = fabric2();
        granted(&mut f, a, b, Vni(3));
        let len = 1u64 << 20;
        let TransferOutcome::Delivered { arrival, .. } =
            f.transfer(SimTime::ZERO, a, b, Vni(3), TrafficClass::BulkData, len, 1)
        else {
            panic!("dropped")
        };
        let gbps = len as f64 / arrival.as_nanos() as f64 * 8.0;
        assert!(gbps > 180.0 && gbps < 200.0, "effective {gbps} Gb/s");
    }

    #[test]
    fn back_to_back_transfers_queue_on_the_link() {
        let (mut f, a, b) = fabric2();
        granted(&mut f, a, b, Vni(3));
        let len = 1u64 << 16;
        let TransferOutcome::Delivered { arrival: t1, .. } =
            f.transfer(SimTime::ZERO, a, b, Vni(3), TrafficClass::BulkData, len, 1)
        else {
            panic!()
        };
        let TransferOutcome::Delivered { arrival: t2, .. } =
            f.transfer(SimTime::ZERO, a, b, Vni(3), TrafficClass::BulkData, len, 2)
        else {
            panic!()
        };
        let ser = f.model().serialize_ns(f.model().wire_bytes(len));
        assert!(t2 > t1);
        let delta = (t2 - t1).as_nanos();
        assert!(
            (delta as i64 - ser as i64).unsigned_abs() <= 2,
            "pipelined messages should be spaced by one serialization: {delta} vs {ser}"
        );
    }

    #[test]
    fn two_senders_share_receiver_downlink() {
        let mut f = Fabric::new(8);
        let (a, b, c) = (NicAddr(1), NicAddr(2), NicAddr(3));
        f.attach(a);
        f.attach(b);
        f.attach(c);
        for n in [a, b, c] {
            f.grant_vni(n, Vni(1)).unwrap();
        }
        let len = 1u64 << 18;
        let TransferOutcome::Delivered { arrival: t1, .. } =
            f.transfer(SimTime::ZERO, a, c, Vni(1), TrafficClass::BulkData, len, 1)
        else {
            panic!()
        };
        let TransferOutcome::Delivered { arrival: t2, .. } =
            f.transfer(SimTime::ZERO, b, c, Vni(1), TrafficClass::BulkData, len, 2)
        else {
            panic!()
        };
        // Different uplinks, same downlink: the second must serialize after
        // the first on c's downlink.
        assert!(t2 > t1);
        let ser = f.model().serialize_ns(f.model().wire_bytes(len));
        assert!((t2 - t1).as_nanos() >= ser - 2);
    }

    #[test]
    fn traffic_counters_track_delivered_only() {
        let (mut f, a, b) = fabric2();
        granted(&mut f, a, b, Vni(9));
        f.transfer(SimTime::ZERO, a, b, Vni(9), TrafficClass::Dedicated, 100, 1);
        // This one is dropped: no grant for VNI 10.
        f.transfer(SimTime::ZERO, a, b, Vni(10), TrafficClass::Dedicated, 100, 2);
        assert_eq!(f.traffic(Vni(9)).messages, 1);
        assert_eq!(f.traffic(Vni(9)).payload_bytes, 100);
        assert_eq!(f.traffic(Vni(9)).switch_hops, 1);
        assert_eq!(f.traffic(Vni(9)).class_messages[TrafficClass::Dedicated.index()], 1);
        assert_eq!(f.traffic(Vni(10)).messages, 0);
    }

    #[test]
    fn unattached_nic_cannot_send() {
        let (mut f, _, b) = fabric2();
        let ghost = NicAddr(99);
        let out = f.transfer(SimTime::ZERO, ghost, b, Vni(1), TrafficClass::Dedicated, 8, 1);
        assert_eq!(out, TransferOutcome::Dropped(DropReason::NoRoute));
    }

    #[test]
    #[should_panic(expected = "attached twice")]
    fn double_attach_panics() {
        let (mut f, a, _) = fabric2();
        f.attach(a);
    }

    #[test]
    fn revoke_stops_future_traffic() {
        let (mut f, a, b) = fabric2();
        granted(&mut f, a, b, Vni(4));
        assert!(matches!(
            f.transfer(SimTime::ZERO, a, b, Vni(4), TrafficClass::Dedicated, 8, 1),
            TransferOutcome::Delivered { .. }
        ));
        f.revoke_vni(b, Vni(4));
        assert_eq!(
            f.transfer(SimTime::ZERO, a, b, Vni(4), TrafficClass::Dedicated, 8, 2),
            TransferOutcome::Dropped(DropReason::VniDeniedEgress)
        );
    }

    #[test]
    fn switch_counters_count_message_packets() {
        let (mut f, a, b) = fabric2();
        granted(&mut f, a, b, Vni(2));
        let len = 10_000u64; // 5 packets at 2 KiB MTU
        f.transfer(SimTime::ZERO, a, b, Vni(2), TrafficClass::Dedicated, len, 1);
        assert_eq!(f.switch().counters.forwarded, 5);
        assert_eq!(f.switch().counters.forwarded_payload_bytes, len);
    }

    #[test]
    fn unbound_destination_drops_no_route() {
        // Node removal through either surface must stop delivery with
        // NoRoute, exactly as the legacy routing-table lookup did.
        let (mut f, a, b) = fabric2();
        granted(&mut f, a, b, Vni(4));
        let port = f.port_of(b).unwrap();
        f.switch_mut().unbind(port);
        assert_eq!(
            f.transfer(SimTime::ZERO, a, b, Vni(4), TrafficClass::Dedicated, 8, 1),
            TransferOutcome::Dropped(DropReason::NoRoute)
        );

        let (mut f, a, b) = fabric2();
        granted(&mut f, a, b, Vni(4));
        assert!(f.detach(b));
        assert!(!f.detach(b), "second detach is a no-op");
        assert_eq!(
            f.transfer(SimTime::ZERO, a, b, Vni(4), TrafficClass::Dedicated, 8, 1),
            TransferOutcome::Dropped(DropReason::NoRoute)
        );
        assert_eq!(f.port_of(b), None);
    }

    #[test]
    fn detach_frees_the_port_for_reuse() {
        // Node-replacement churn: a 4-port switch survives more than 4
        // total attachments because detached ports are reused.
        let mut f = Fabric::new(4);
        for round in 0..3u32 {
            for i in 0..4u32 {
                f.attach(NicAddr(round * 4 + i + 1));
            }
            for i in 0..4u32 {
                assert!(f.detach(NicAddr(round * 4 + i + 1)));
            }
        }
        let survivor = NicAddr(99);
        f.attach(survivor);
        f.grant_vni(survivor, Vni(1)).unwrap();
        assert!(f.nic_has_vni(survivor, Vni(1)));
    }

    #[test]
    fn grant_on_unknown_nic_is_an_error() {
        let (mut f, _, _) = fabric2();
        assert_eq!(
            f.grant_vni(NicAddr(99), Vni(5)),
            Err(FabricError::UnknownNic(NicAddr(99)))
        );
    }

    #[test]
    fn anomalous_revokes_are_audited() {
        let (mut f, a, _) = fabric2();
        assert!(!f.revoke_vni(NicAddr(99), Vni(5)));
        assert!(!f.revoke_vni(a, Vni(5)));
        assert_eq!(
            f.audit(),
            &[
                FabricAuditEvent::RevokeUnknownNic { nic: NicAddr(99), vni: Vni(5) },
                FabricAuditEvent::RevokeNeverGranted { nic: a, vni: Vni(5) },
            ]
        );
        // A legitimate grant/revoke pair leaves no new audit entries.
        f.grant_vni(a, Vni(5)).unwrap();
        assert!(f.revoke_vni(a, Vni(5)));
        assert_eq!(f.audit().len(), 2);
    }

    #[test]
    fn cross_group_transfer_crosses_the_global_link() {
        let (mut f, a, b) = cross_group();
        let TransferOutcome::Delivered { arrival, .. } =
            f.transfer(SimTime::ZERO, a, b, Vni(7), TrafficClass::Dedicated, 64, 1)
        else {
            panic!("dropped")
        };
        // Two switch hops: strictly slower than the single-switch path.
        assert_eq!(arrival.as_nanos(), f.unloaded_route_ns(a, b, 64).unwrap());
        assert!(arrival.as_nanos() > f.unloaded_ns(64));
        assert_eq!(f.traffic(Vni(7)).switch_hops, 2);
        let trunk = f.trunk_counters(SwitchId(0), SwitchId(1)).unwrap();
        assert_eq!(trunk[TrafficClass::Dedicated.index()].messages, 1);
        // Both edge switches counted the forwarded packet.
        assert_eq!(f.switch_at(SwitchId(0)).counters.forwarded, 1);
        assert_eq!(f.switch_at(SwitchId(1)).counters.forwarded, 1);
    }

    #[test]
    fn cross_group_enforcement_checks_both_edge_ports() {
        let mut f = Fabric::with_topology(
            CostModel::default(),
            TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 4 },
            RoutingPolicy::Minimal,
        );
        let (a, b) = (NicAddr(1), NicAddr(2));
        f.attach_to(a, SwitchId(0));
        f.attach_to(b, SwitchId(1));
        f.grant_vni(a, Vni(7)).unwrap();
        // Sender holds the VNI, receiver (on the other switch) does not.
        assert_eq!(
            f.transfer(SimTime::ZERO, a, b, Vni(7), TrafficClass::Dedicated, 8, 1),
            TransferOutcome::Dropped(DropReason::VniDeniedEgress)
        );
        assert_eq!(
            f.transfer(SimTime::ZERO, b, a, Vni(7), TrafficClass::Dedicated, 8, 2),
            TransferOutcome::Dropped(DropReason::VniDeniedIngress)
        );
    }

    /// 2 groups × 1 switch; three sender NICs in group 0 whose uplinks
    /// converge on the single global link towards the receiver in
    /// group 1 — the shape that actually backlogs a trunk (one sender
    /// alone is already serialized by its own uplink).
    fn incast_rig() -> (Fabric, [NicAddr; 3], NicAddr) {
        let mut f = Fabric::with_topology(
            CostModel::default(),
            TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 4 },
            RoutingPolicy::Minimal,
        );
        let senders = [NicAddr(1), NicAddr(2), NicAddr(3)];
        let b = NicAddr(9);
        for s in senders {
            f.attach_to(s, SwitchId(0));
            f.grant_vni(s, Vni(7)).unwrap();
        }
        f.attach_to(b, SwitchId(1));
        f.grant_vni(b, Vni(7)).unwrap();
        (f, senders, b)
    }

    #[test]
    fn low_latency_class_is_shielded_on_a_contended_trunk() {
        let (mut f, senders, b) = incast_rig();
        // A bulk incast backlogs the trunk's BulkData queue...
        let bulk = 1u64 << 20;
        let mut delivered = 0;
        for (i, s) in senders.iter().enumerate() {
            if matches!(
                f.transfer(SimTime::ZERO, *s, b, Vni(7), TrafficClass::BulkData, bulk, i as u64),
                TransferOutcome::Delivered { .. }
            ) {
                delivered += 1;
            }
        }
        assert!(delivered >= 2, "some of the burst gets through");
        assert!(
            f.trunk_class_totals()[TrafficClass::BulkData.index()].queued_ns_max > 0,
            "the bulk class actually queued"
        );
        // ...while a low-latency message between two *otherwise idle*
        // NICs, sharing only the trunk with the burst, sees only the
        // weighted-sharing stretch, not the burst's backlog. (Edge links
        // are class-blind, so the probe gets its own.)
        let (lla, llb) = (NicAddr(4), NicAddr(10));
        f.attach_to(lla, SwitchId(0));
        f.attach_to(llb, SwitchId(1));
        granted(&mut f, lla, llb, Vni(7));
        let TransferOutcome::Delivered { arrival, .. } =
            f.transfer(SimTime::ZERO, lla, llb, Vni(7), TrafficClass::LowLatency, 64, 99)
        else {
            panic!("dropped")
        };
        let unloaded = f.unloaded_route_ns(lla, llb, 64).unwrap();
        assert!(
            arrival.as_nanos() < 2 * unloaded,
            "low-latency {}ns vs unloaded {unloaded}ns",
            arrival.as_nanos()
        );
    }

    #[test]
    fn trunk_queue_overflow_drops_and_counts_per_class_and_tenant() {
        let (mut f, senders, b) = incast_rig();
        let bulk = 1u64 << 20; // ~43 µs serialization; the 100 µs bound
        let mut outcomes = Vec::new();
        // Two interleaved incast waves: sender uplinks are parallel, so
        // the trunk's BulkData queue grows by one serialization per
        // convergent message until the bound trips.
        for wave in 0..2u64 {
            for (i, s) in senders.iter().enumerate() {
                let id = wave * 3 + i as u64;
                outcomes.push(
                    f.transfer(SimTime::ZERO, *s, b, Vni(7), TrafficClass::BulkData, bulk, id),
                );
            }
        }
        let drops = outcomes
            .iter()
            .filter(|o| matches!(o, TransferOutcome::Dropped(DropReason::Congested)))
            .count();
        assert!(drops > 0, "queue bound must trip: {outcomes:?}");
        let totals = f.trunk_class_totals();
        assert_eq!(totals[TrafficClass::BulkData.index()].congestion_drops, drops as u64);
        assert_eq!(f.traffic(Vni(7)).congestion_drops, drops as u64);
        assert_eq!(
            f.switch_at(SwitchId(0)).counters.drops.get(&DropReason::Congested),
            Some(&(drops as u64))
        );
    }

    /// 3 groups × 1 switch, one NIC on switch 0 and one on switch 1 —
    /// the smallest fabric where minimal (`[0,1]`) and Valiant
    /// (`[0,2,1]`) genuinely differ, for the adaptive and fault tests.
    fn three_group(policy: RoutingPolicy) -> (Fabric, NicAddr, NicAddr) {
        let mut f = Fabric::with_topology(
            CostModel::default(),
            TopologySpec { groups: 3, switches_per_group: 1, edge_ports: 4 },
            policy,
        );
        let a = NicAddr(1);
        let b = NicAddr(2);
        f.attach_to(a, SwitchId(0));
        f.attach_to(b, SwitchId(1));
        granted(&mut f, a, b, Vni(7));
        (f, a, b)
    }

    #[test]
    fn adaptive_routing_diverts_off_a_backlogged_trunk() {
        let (mut f, a, b) = three_group(RoutingPolicy::Adaptive);
        let bulk = 1u64 << 20;
        // First message sees empty queues everywhere: UGAL picks the
        // minimal 2-switch route and backlogs trunk (0, 1).
        assert!(matches!(
            f.transfer(SimTime::ZERO, a, b, Vni(7), TrafficClass::BulkData, bulk, 1),
            TransferOutcome::Delivered { .. }
        ));
        assert_eq!(f.traffic(Vni(7)).switch_hops, 2);
        // Second message at the same instant: minimal's first trunk is
        // ~43 µs deep, the Valiant detour's is idle — 43 µs × 2 hops
        // beats 0 × 3 hops, so UGAL detours via group 2.
        assert!(matches!(
            f.transfer(SimTime::ZERO, a, b, Vni(7), TrafficClass::BulkData, bulk, 2),
            TransferOutcome::Delivered { .. }
        ));
        let t = f.traffic(Vni(7));
        assert_eq!(t.switch_hops, 2 + 3, "second message took the 3-switch detour");
        assert_eq!(t.reroutes, 0, "an adaptive choice is not a failure reroute");
        let detour = f.trunk_counters(SwitchId(0), SwitchId(2)).unwrap();
        assert_eq!(detour[TrafficClass::BulkData.index()].messages, 1);
    }

    #[test]
    fn trunk_cut_reroutes_deterministically_with_hop_delta() {
        let (mut f, a, b) = three_group(RoutingPolicy::Minimal);
        f.apply_fault(FaultKind::LinkDown(SwitchId(0), SwitchId(1)));
        assert!(!f.liveness().is_empty());
        let TransferOutcome::Delivered { arrival, .. } =
            f.transfer(SimTime::ZERO, a, b, Vni(7), TrafficClass::Dedicated, 64, 1)
        else {
            panic!("reroute must deliver")
        };
        let t = f.traffic(Vni(7));
        assert_eq!(t.switch_hops, 3, "detour [0,2,1] instead of minimal [0,1]");
        assert_eq!(t.reroutes, 1);
        // Strictly slower than the healthy minimal path: one extra hop.
        assert!(arrival.as_nanos() > f.unloaded_route_ns(a, b, 64).unwrap());
        for (s, d) in [(0, 2), (2, 1)] {
            let c = f.trunk_counters(SwitchId(s), SwitchId(d)).unwrap();
            assert_eq!(c[TrafficClass::Dedicated.index()].messages, 1, "({s},{d})");
        }
    }

    #[test]
    fn partition_drops_no_route_and_link_up_restores() {
        let (mut f, a, b) = cross_group();
        // The only inter-group trunk of a 2-group × 1-switch dragonfly:
        // cutting it genuinely partitions the fabric.
        f.apply_fault(FaultKind::LinkDown(SwitchId(0), SwitchId(1)));
        assert_eq!(
            f.transfer(SimTime::ZERO, a, b, Vni(7), TrafficClass::Dedicated, 8, 1),
            TransferOutcome::Dropped(DropReason::NoRoute)
        );
        assert_eq!(
            f.switch_at(SwitchId(0)).counters.drops.get(&DropReason::NoRoute),
            Some(&1)
        );
        assert_eq!(f.traffic(Vni(7)).messages, 0);
        f.apply_fault(FaultKind::LinkUp(SwitchId(0), SwitchId(1)));
        assert!(f.liveness().is_empty(), "recovered fabric is back on the fast path");
        assert!(matches!(
            f.transfer(SimTime::ZERO, a, b, Vni(7), TrafficClass::Dedicated, 8, 2),
            TransferOutcome::Delivered { .. }
        ));
    }

    #[test]
    fn switch_down_spares_live_pairs_then_partitions_with_the_trunk() {
        let (mut f, a, b) = three_group(RoutingPolicy::Minimal);
        f.apply_fault(FaultKind::SwitchDown(SwitchId(2)));
        // Minimal [0, 1] avoids the dead switch: delivered, no reroute.
        assert!(matches!(
            f.transfer(SimTime::ZERO, a, b, Vni(7), TrafficClass::Dedicated, 8, 1),
            TransferOutcome::Delivered { .. }
        ));
        assert_eq!(f.traffic(Vni(7)).reroutes, 0);
        // Now the direct trunk dies too — with group 2 down there is no
        // detour left.
        f.apply_fault(FaultKind::LinkDown(SwitchId(0), SwitchId(1)));
        assert_eq!(
            f.transfer(SimTime::ZERO, a, b, Vni(7), TrafficClass::Dedicated, 8, 2),
            TransferOutcome::Dropped(DropReason::NoRoute)
        );
    }

    #[test]
    fn ecn_marks_accrue_per_tenant_and_drain_per_sender() {
        // Same incast shape as `incast_rig`, with the ECN threshold
        // lowered below the queue bound so marks can fire.
        let mut f = Fabric::with_topology(
            CostModel { ecn_threshold_ns: 1_000, ..CostModel::default() },
            TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 4 },
            RoutingPolicy::Minimal,
        );
        let senders = [NicAddr(1), NicAddr(2), NicAddr(3)];
        let b = NicAddr(9);
        for s in senders {
            f.attach_to(s, SwitchId(0));
            f.grant_vni(s, Vni(7)).unwrap();
        }
        f.attach_to(b, SwitchId(1));
        f.grant_vni(b, Vni(7)).unwrap();
        let bulk = 1u64 << 20;
        for (i, s) in senders.iter().enumerate() {
            assert!(matches!(
                f.transfer(SimTime::ZERO, *s, b, Vni(7), TrafficClass::BulkData, bulk, i as u64),
                TransferOutcome::Delivered { .. }
            ));
        }
        // The first sender found the trunk idle; the two converging
        // behind it each queued past the threshold and got marked.
        assert_eq!(f.traffic(Vni(7)).ecn_marks, 2);
        assert_eq!(f.take_ecn_marks(senders[0]), 0);
        assert_eq!(f.take_ecn_marks(senders[1]), 1);
        assert_eq!(f.take_ecn_marks(senders[1]), 0, "marks drain on read");
        assert_eq!(f.take_ecn_marks(senders[2]), 1);
    }

    #[test]
    fn default_threshold_never_marks() {
        let (mut f, senders, b) = incast_rig();
        for wave in 0..2u64 {
            for (i, s) in senders.iter().enumerate() {
                let id = wave * 3 + i as u64;
                f.transfer(SimTime::ZERO, *s, b, Vni(7), TrafficClass::BulkData, 1 << 20, id);
            }
        }
        // Queues grew past the default ECN threshold only where the
        // message was *dropped* instead — accepted ones never mark.
        assert_eq!(f.traffic(Vni(7)).ecn_marks, 0);
        for s in senders {
            assert_eq!(f.take_ecn_marks(s), 0);
        }
    }

    #[test]
    fn detach_with_messages_in_flight_keeps_tenant_counters_clean() {
        // Regression: `detach` used to leave the recycled port's edge
        // link busy horizons (and any pending ECN feedback) behind, so
        // the next NIC attached to that port inherited a stale uplink.
        let mut f = Fabric::with_topology(
            CostModel { ecn_threshold_ns: 1_000, ..CostModel::default() },
            TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 4 },
            RoutingPolicy::Minimal,
        );
        let senders = [NicAddr(1), NicAddr(2), NicAddr(3)];
        let sink = NicAddr(9);
        for s in senders {
            f.attach_to(s, SwitchId(0));
            f.grant_vni(s, Vni(7)).unwrap();
        }
        f.attach_to(sink, SwitchId(1));
        f.grant_vni(sink, Vni(7)).unwrap();
        let bulk = 1u64 << 20;
        for (i, s) in senders.iter().enumerate() {
            f.transfer(SimTime::ZERO, *s, sink, Vni(7), TrafficClass::BulkData, bulk, i as u64);
        }
        let before = f.traffic(Vni(7));
        assert!(before.ecn_marks > 0, "the rig accrued ECN debt");
        // Detach the last sender while the trunk and the sink downlink
        // are still busy far into the future with its message.
        assert!(f.detach(senders[2]));
        assert_eq!(f.traffic(Vni(7)), before, "detach must not touch per-VNI counters");
        // The recycled port comes up clean: fresh NIC, same port, idle
        // uplink — an LL probe sees exactly the unloaded path (its
        // class queue on the trunk is empty; only BulkData is backed up).
        let fresh = NicAddr(42);
        f.attach_to(fresh, SwitchId(0));
        assert_eq!(f.port_of(fresh), Some(PortId(2)), "port was recycled");
        f.grant_vni(fresh, Vni(7)).unwrap();
        let probe_dst = NicAddr(10);
        f.attach_to(probe_dst, SwitchId(1));
        f.grant_vni(probe_dst, Vni(7)).unwrap();
        let TransferOutcome::Delivered { arrival, .. } = f.transfer(
            SimTime::ZERO,
            fresh,
            probe_dst,
            Vni(7),
            TrafficClass::LowLatency,
            64,
            99,
        ) else {
            panic!("probe dropped")
        };
        assert_eq!(arrival.as_nanos(), f.unloaded_route_ns(fresh, probe_dst, 64).unwrap());
        // And the detached NIC's pending ECN feedback died with it.
        assert_eq!(f.take_ecn_marks(senders[2]), 0);
        assert_eq!(f.take_ecn_marks(fresh), 0);
    }

    #[test]
    fn multi_switch_transfers_are_deterministic() {
        let run = || {
            let (mut f, a, b) = cross_group();
            let mut arrivals = Vec::new();
            for i in 0..8 {
                let tc = TrafficClass::ALL[(i % 4) as usize];
                if let TransferOutcome::Delivered { arrival, .. } =
                    f.transfer(SimTime::from_nanos(i * 500), a, b, Vni(7), tc, 4096, i)
                {
                    arrivals.push(arrival.as_nanos());
                }
            }
            arrivals
        };
        assert_eq!(run(), run());
    }
}
