//! Runtime fabric faults: link and switch failures, the liveness mask
//! the routing engines consult, and the deterministic breadth-first
//! repair used when every interned route is dead.
//!
//! Faults never rebuild the interned route arenas — they are filtered.
//! A [`LivenessMask`] records which trunks and switches are down; route
//! selection checks candidates against it and falls back in a fixed,
//! deterministic order (minimal, then every Valiant salt class, then a
//! BFS over the live graph). The mask's `epoch` counter invalidates any
//! cached repair when a fault event mutates liveness.
//!
//! Both engines share this module: the serial [`crate::Fabric`] applies
//! [`FaultKind`] events directly, and the sharded engine
//! ([`crate::shardsim`]) schedules the same globally-known fault
//! schedule into **every** shard's local event queue — liveness views
//! never diverge between shards, so no cross-shard fault notification
//! exists and the conservative lookahead is untouched by failures.

use std::collections::BTreeSet;

use crate::topology::Topology;
use crate::types::SwitchId;

/// One runtime fault event. Links are undirected here (a physical cable
/// cut kills both directions of the trunk pair); switch faults take the
/// switch and every trunk touching it out of service.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The trunk between two switches goes down (both directions).
    LinkDown(SwitchId, SwitchId),
    /// The trunk between two switches comes back up.
    LinkUp(SwitchId, SwitchId),
    /// A whole switch goes down (and stays down; recovery of a switch
    /// is modeled as node replacement, not a fabric event).
    SwitchDown(SwitchId),
}

/// Longest path the failure repair will accept: two intermediate groups
/// (`src → gw → land → gw → land → gw → land → dst`). A live pair whose
/// shortest path exceeds this counts as partitioned (`NoRoute`) — on a
/// dragonfly that takes a pathological multi-fault schedule.
pub const MAX_REPAIR_PATH: usize = 8;

/// Which trunks and switches are currently dead. Empty (the common
/// case) means the fabric is healthy and route selection takes the
/// interned fast path untouched.
#[derive(Debug, Clone, Default)]
pub struct LivenessMask {
    /// Dead trunks as canonical `(lo, hi)` switch-id pairs.
    dead_trunks: BTreeSet<(u32, u32)>,
    /// Dead switches.
    dead_switches: BTreeSet<u32>,
    /// Bumped on every mutation; caches keyed by epoch self-invalidate.
    epoch: u64,
}

impl LivenessMask {
    #[inline]
    fn key(a: SwitchId, b: SwitchId) -> (u32, u32) {
        let (a, b) = (a.0 as u32, b.0 as u32);
        (a.min(b), a.max(b))
    }

    /// Apply one fault event. `LinkUp` on a live link and `LinkDown` on
    /// a dead one are idempotent (flap schedules may repeat an edge);
    /// the epoch still advances so cached repairs are re-derived.
    pub fn apply(&mut self, kind: FaultKind) {
        match kind {
            FaultKind::LinkDown(a, b) => {
                self.dead_trunks.insert(Self::key(a, b));
            }
            FaultKind::LinkUp(a, b) => {
                self.dead_trunks.remove(&Self::key(a, b));
            }
            FaultKind::SwitchDown(s) => {
                self.dead_switches.insert(s.0 as u32);
            }
        }
        self.epoch += 1;
    }

    /// Whether the fabric is fully healthy (fast-path guard).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.dead_trunks.is_empty() && self.dead_switches.is_empty()
    }

    /// Mutation count (cache-invalidation key).
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Whether a switch is up.
    #[inline]
    pub fn switch_live(&self, s: SwitchId) -> bool {
        self.dead_switches.is_empty() || !self.dead_switches.contains(&(s.0 as u32))
    }

    /// Whether the trunk between `a` and `b` is up, including both
    /// endpoint switches.
    #[inline]
    pub fn link_live(&self, a: SwitchId, b: SwitchId) -> bool {
        self.switch_live(a)
            && self.switch_live(b)
            && (self.dead_trunks.is_empty() || !self.dead_trunks.contains(&Self::key(a, b)))
    }

    /// Whether every switch and trunk of `path` is live.
    pub fn route_live(&self, path: &[SwitchId]) -> bool {
        if self.is_empty() {
            return true;
        }
        path.iter().all(|&s| self.switch_live(s))
            && path.windows(2).all(|w| self.link_live(w[0], w[1]))
    }
}

/// Deterministic shortest-path repair over the live graph: BFS from
/// `from` to `to`, expanding neighbours in ascending switch-id order,
/// rejecting dead switches and trunks. Returns the path (endpoints
/// included, ≤ [`MAX_REPAIR_PATH`] switches) or `None` when the pair is
/// partitioned (or only pathologically-long paths remain).
pub fn repair_route(
    topo: &Topology,
    mask: &LivenessMask,
    from: SwitchId,
    to: SwitchId,
) -> Option<Vec<SwitchId>> {
    if !mask.switch_live(from) || !mask.switch_live(to) {
        return None;
    }
    if from == to {
        return Some(vec![from]);
    }
    let n = topo.switch_count();
    // prev[s] = predecessor on the BFS tree, usize::MAX = unvisited.
    let mut prev = vec![usize::MAX; n];
    prev[from.0] = from.0;
    let mut frontier = vec![from.0];
    let mut next = Vec::new();
    // BFS depth = edges; a path of MAX_REPAIR_PATH switches has
    // MAX_REPAIR_PATH - 1 edges.
    for _depth in 0..MAX_REPAIR_PATH - 1 {
        for &cur in &frontier {
            for cand in 0..n {
                if prev[cand] != usize::MAX {
                    continue;
                }
                let (a, b) = (SwitchId(cur), SwitchId(cand));
                if !topo.connected(a, b) || !mask.link_live(a, b) {
                    continue;
                }
                prev[cand] = cur;
                if cand == to.0 {
                    let mut path = vec![to];
                    let mut s = to.0;
                    while s != from.0 {
                        s = prev[s];
                        path.push(SwitchId(s));
                    }
                    path.reverse();
                    return Some(path);
                }
                next.push(cand);
            }
        }
        if next.is_empty() {
            return None;
        }
        frontier.clear();
        std::mem::swap(&mut frontier, &mut next);
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::{RoutingPolicy, TopologySpec};

    fn topo3() -> Topology {
        Topology::new(
            TopologySpec { groups: 3, switches_per_group: 1, edge_ports: 4 },
            RoutingPolicy::Minimal,
        )
    }

    #[test]
    fn empty_mask_is_all_live() {
        let m = LivenessMask::default();
        assert!(m.is_empty());
        assert!(m.route_live(&[SwitchId(0), SwitchId(1), SwitchId(2)]));
        assert!(m.link_live(SwitchId(0), SwitchId(1)));
    }

    #[test]
    fn link_faults_are_undirected_and_reversible() {
        let mut m = LivenessMask::default();
        m.apply(FaultKind::LinkDown(SwitchId(1), SwitchId(0)));
        assert!(!m.link_live(SwitchId(0), SwitchId(1)));
        assert!(!m.link_live(SwitchId(1), SwitchId(0)));
        assert!(m.link_live(SwitchId(0), SwitchId(2)));
        let e = m.epoch();
        m.apply(FaultKind::LinkUp(SwitchId(0), SwitchId(1)));
        assert!(m.link_live(SwitchId(0), SwitchId(1)));
        assert!(m.is_empty());
        assert!(m.epoch() > e, "every mutation bumps the epoch");
    }

    #[test]
    fn switch_down_kills_its_trunks() {
        let mut m = LivenessMask::default();
        m.apply(FaultKind::SwitchDown(SwitchId(1)));
        assert!(!m.switch_live(SwitchId(1)));
        assert!(!m.link_live(SwitchId(0), SwitchId(1)));
        assert!(!m.route_live(&[SwitchId(0), SwitchId(1), SwitchId(2)]));
        assert!(m.link_live(SwitchId(0), SwitchId(2)));
    }

    #[test]
    fn repair_detours_around_a_cut_trunk() {
        let t = topo3();
        let mut m = LivenessMask::default();
        m.apply(FaultKind::LinkDown(SwitchId(0), SwitchId(1)));
        let p = repair_route(&t, &m, SwitchId(0), SwitchId(1)).expect("group 2 detour");
        assert_eq!(p, vec![SwitchId(0), SwitchId(2), SwitchId(1)]);
        assert!(m.route_live(&p));
    }

    #[test]
    fn repair_reports_partitions() {
        // 2 groups × 1 switch: the only trunk is (0, 1); cutting it
        // genuinely partitions the fabric.
        let t = Topology::new(
            TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 4 },
            RoutingPolicy::Minimal,
        );
        let mut m = LivenessMask::default();
        m.apply(FaultKind::LinkDown(SwitchId(0), SwitchId(1)));
        assert!(repair_route(&t, &m, SwitchId(0), SwitchId(1)).is_none());
        // Intra-switch still works.
        assert_eq!(repair_route(&t, &m, SwitchId(0), SwitchId(0)), Some(vec![SwitchId(0)]));
    }

    #[test]
    fn repair_is_shortest_and_deterministic() {
        // 4 groups × 2 switches: cut the (0,1)-group trunk, repair from
        // a non-gateway switch.
        let t = Topology::new(
            TopologySpec { groups: 4, switches_per_group: 2, edge_ports: 4 },
            RoutingPolicy::Minimal,
        );
        let gw01 = t.gateway(0, 1);
        let gw10 = t.gateway(1, 0);
        let mut m = LivenessMask::default();
        m.apply(FaultKind::LinkDown(gw01, gw10));
        let p = repair_route(&t, &m, SwitchId(0), SwitchId(2)).expect("alternate group path");
        assert_eq!(p.first(), Some(&SwitchId(0)));
        assert_eq!(p.last(), Some(&SwitchId(2)));
        assert!(p.len() <= MAX_REPAIR_PATH);
        assert!(m.route_live(&p));
        for w in p.windows(2) {
            assert!(t.connected(w[0], w[1]));
        }
        assert_eq!(p, repair_route(&t, &m, SwitchId(0), SwitchId(2)).unwrap());
    }
}
