//! Fault-schedule oracle for the sharded fabric engine: over arbitrary
//! dragonfly sweeps (≤ 4 groups, minimal/Valiant/adaptive routing) with
//! **random runtime fault schedules** — link cuts, link recoveries,
//! switch deaths at arbitrary instants — every launched message must be
//! accounted for (`sent == delivered + congestion_drops + route_drops`,
//! the packet-conservation invariant), no packet may traverse a dead
//! link (killing every global link up front must zero the cross-group
//! delivery count), and the whole result must be **bit-identical**
//! between the serial and the multi-threaded engine under the same
//! schedule.

use proptest::prelude::*;
use shs_fabric::{
    run_sweep, FaultKind, RoutingPolicy, SweepConfig, SweepFault, SwitchId, Topology,
    TopologySpec,
};

/// A sweep shape with at least two groups, so fault schedules have
/// global links to kill.
fn config_strategy() -> impl Strategy<Value = SweepConfig> {
    (
        (2usize..=4, 1usize..=3, 1usize..=3), // groups, switches/group, nodes/switch
        (
            prop_oneof![
                Just(RoutingPolicy::Minimal),
                Just(RoutingPolicy::Valiant),
                Just(RoutingPolicy::Adaptive),
            ],
            1u32..=6,                                            // messages per node
            prop_oneof![Just(64u64), Just(4096), Just(262_144)], // payload
        ),
        (1u64..=5_000, 0u32..=3, 0u64..=(1 << 48)), // interval ns, cross cadence, seed
    )
        .prop_map(|((groups, spg, nps), (policy, mpn, payload), (interval, cross, seed))| {
            SweepConfig {
                spec: TopologySpec {
                    groups,
                    switches_per_group: spg,
                    // At least as many edge ports as attached nodes.
                    edge_ports: nps.max(2),
                },
                policy,
                nodes_per_switch: nps,
                messages_per_node: mpn,
                payload_bytes: payload,
                interval_ns: interval,
                cross_group_every: cross,
                seed,
                ..SweepConfig::default()
            }
        })
}

/// Up to 6 raw fault events; switch indices and instants are drawn wide
/// and folded into the config's actual topology/timeline by
/// [`schedule`].
fn faults_strategy() -> impl Strategy<Value = Vec<(u64, u8, usize, usize)>> {
    prop::collection::vec(
        (0u64..=60_000, 0u8..3, 0usize..64, 0usize..64),
        0..=6,
    )
}

/// Fold raw fault draws into events valid for `cfg`: indices wrap into
/// the switch count, self-links skew to a neighbour, and `LinkUp`
/// events mirror the cut of the same pair so flap schedules genuinely
/// flap.
fn schedule(cfg: &SweepConfig, raw: &[(u64, u8, usize, usize)]) -> Vec<SweepFault> {
    let n = cfg.spec.total_switches();
    raw.iter()
        .map(|&(at_ns, kind, a, b)| {
            let a = SwitchId(a % n);
            let b = SwitchId(if b % n == a.0 { (a.0 + 1) % n } else { b % n });
            let kind = match kind {
                0 => FaultKind::LinkDown(a, b),
                1 => FaultKind::LinkUp(a, b),
                _ => FaultKind::SwitchDown(a),
            };
            SweepFault { at_ns, kind }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Conservation + determinism under arbitrary fault schedules: the
    /// serial engine and the 2- and 4-thread engines produce the same
    /// counters to the bit, and no message is ever lost unaccounted.
    #[test]
    fn random_fault_schedules_conserve_and_stay_thread_invariant(
        cfg in config_strategy(),
        raw in faults_strategy(),
    ) {
        let mut cfg = cfg;
        cfg.faults = schedule(&cfg, &raw);
        let base = run_sweep(&cfg, 1);
        prop_assert!(
            base.conserved(),
            "sent {} != delivered {} + congestion {} + route {}",
            base.totals.sent,
            base.totals.delivered,
            base.totals.congestion_drops,
            base.totals.route_drops
        );
        if let Some(slack) = base.min_inject_slack {
            prop_assert!(slack >= 0, "conservative violation: slack {}ns", slack);
        }
        for threads in [2usize, 4] {
            let run = run_sweep(&cfg, threads);
            prop_assert_eq!(&run, &base, "threads={}", threads);
        }
    }

    /// No packet traverses a dead link: with **every** global link cut
    /// at t=0 (faults apply before any injection at equal instants) and
    /// every message forced cross-group, nothing can be delivered — the
    /// entire load must surface as `NoRoute` drops, with zero switch
    /// hops paid. Per-hop enforcement is the same `link_live` check
    /// mid-flight cuts go through, so this pins the strongest
    /// observable form of the invariant.
    #[test]
    fn cutting_every_global_link_zeroes_cross_group_delivery(
        cfg in config_strategy(),
    ) {
        // Every message of every node goes cross-group.
        let mut cfg = cfg;
        cfg.cross_group_every = 1;
        let topo = Topology::new(cfg.spec, cfg.policy);
        cfg.faults = topo
            .trunk_links()
            .iter()
            .filter(|&&(a, b)| topo.group_of(a) != topo.group_of(b))
            .map(|&(a, b)| SweepFault { at_ns: 0, kind: FaultKind::LinkDown(a, b) })
            .collect();
        let healthy = run_sweep(&SweepConfig { faults: Vec::new(), ..cfg.clone() }, 1);
        let cut = run_sweep(&cfg, 1);
        prop_assert!(cut.conserved());
        prop_assert_eq!(cut.totals.sent, healthy.totals.sent, "faults must not change the load");
        prop_assert_eq!(cut.totals.delivered, 0, "a dead link must never carry a packet");
        prop_assert_eq!(cut.totals.switch_hops, 0);
        prop_assert_eq!(cut.totals.congestion_drops, 0);
        prop_assert_eq!(cut.totals.route_drops, cut.totals.sent);
        // Thread invariance holds for the degenerate schedule too.
        prop_assert_eq!(&run_sweep(&cfg, 4), &cut);
    }
}
