//! Property tests for the dragonfly topology: routing must be
//! deterministic, loop-free, link-valid and hop-bounded for arbitrary
//! (groups, switches/group, edge ports) within bounds, under the
//! minimal, Valiant and adaptive (UGAL) policies — and, with a fault
//! mask in play, the deterministic failure-fallback chain must keep
//! every pair routable across any single link cut.

use proptest::prelude::*;
use shs_fabric::{
    repair_route, FaultKind, LivenessMask, RoutingPolicy, SwitchId, Topology, TopologySpec,
    MAX_REPAIR_PATH,
};

fn spec_strategy() -> impl Strategy<Value = TopologySpec> {
    (1usize..6, 1usize..5, 1usize..8).prop_map(|(groups, switches_per_group, edge_ports)| {
        TopologySpec { groups, switches_per_group, edge_ports }
    })
}

/// Specs where a single link cut can never partition the fabric: ≥3
/// groups give every group pair a detour through a third group, and the
/// intra-group mesh keeps local pairs connected (for 2-switch groups,
/// via their trunks and the group graph).
fn resilient_spec_strategy() -> impl Strategy<Value = TopologySpec> {
    (3usize..6, 1usize..4, 1usize..5).prop_map(|(groups, switches_per_group, edge_ports)| {
        TopologySpec { groups, switches_per_group, edge_ports }
    })
}

/// The engines' deterministic failure-fallback chain (`Fabric` and the
/// sharded sweep both implement exactly this order): the minimal route
/// if fully live, else the first live Valiant salt class starting from
/// the message's own, else a BFS repair over the live graph.
fn fallback_route(
    topo: &Topology,
    mask: &LivenessMask,
    from: SwitchId,
    to: SwitchId,
    salt: u64,
) -> Option<Vec<SwitchId>> {
    let min = topo.route_minimal(from, to);
    if mask.route_live(min) {
        return Some(min.to_vec());
    }
    if topo.groups() >= 3 {
        let classes = topo.salt_classes() as u64;
        for k in 0..classes {
            let val = topo.route_valiant(from, to, (salt + k) % classes);
            if mask.route_live(val) {
                return Some(val.to_vec());
            }
        }
    }
    repair_route(topo, mask, from, to)
}

fn check_route(topo: &Topology, path: &[SwitchId], from: SwitchId, to: SwitchId, max_len: usize) {
    assert_eq!(path.first(), Some(&from), "route starts at the source");
    assert_eq!(path.last(), Some(&to), "route ends at the destination");
    assert!(path.len() <= max_len, "route too long: {path:?}");
    let mut seen = std::collections::BTreeSet::new();
    for s in path {
        assert!(seen.insert(*s), "loop: {path:?} revisits {s}");
    }
    for w in path.windows(2) {
        assert!(topo.connected(w[0], w[1]), "{:?}: {} and {} not linked", path, w[0], w[1]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Minimal routing: every switch pair gets a deterministic,
    /// loop-free route over existing links of at most 4 switches.
    #[test]
    fn minimal_routes_are_deterministic_and_loop_free(
        spec in spec_strategy(),
        salt in any::<u64>(),
    ) {
        let topo = Topology::new(spec, RoutingPolicy::Minimal);
        let rebuilt = Topology::new(spec, RoutingPolicy::Minimal);
        let n = topo.switch_count();
        for s in 0..n {
            for d in 0..n {
                let (from, to) = (SwitchId(s), SwitchId(d));
                let path = topo.route(from, to, salt);
                check_route(&topo, path, from, to, 4);
                // Deterministic: independent of the salt and of the
                // Topology instance (the table is a pure function of the
                // spec).
                prop_assert_eq!(&path, &topo.route(from, to, salt.wrapping_add(1)));
                prop_assert_eq!(&path, &rebuilt.route(from, to, salt));
            }
        }
    }

    /// Valiant routing: loop-free over existing links, at most 6
    /// switches, and deterministic in the salt.
    #[test]
    fn valiant_routes_are_deterministic_and_loop_free(
        spec in spec_strategy(),
        salt in any::<u64>(),
    ) {
        let topo = Topology::new(spec, RoutingPolicy::Valiant);
        let n = topo.switch_count();
        for s in 0..n {
            for d in 0..n {
                let (from, to) = (SwitchId(s), SwitchId(d));
                let path = topo.route(from, to, salt);
                check_route(&topo, path, from, to, 6);
                prop_assert_eq!(&path, &topo.route(from, to, salt));
            }
        }
    }

    /// Adaptive (UGAL) routing decides per packet between exactly two
    /// candidates — the minimal route and the salted Valiant detour —
    /// based on live queue depths at injection. Whatever the queue
    /// state, the chosen route is therefore one of these two, so any
    /// live-queue state yields a deterministic, loop-free route over
    /// existing links of at most 6 switches; and the policy's static
    /// primary table is the minimal one.
    #[test]
    fn adaptive_candidates_are_loop_free_for_any_queue_state(
        spec in spec_strategy(),
        salt in any::<u64>(),
    ) {
        let topo = Topology::new(spec, RoutingPolicy::Adaptive);
        let n = topo.switch_count();
        for s in 0..n {
            for d in 0..n {
                let (from, to) = (SwitchId(s), SwitchId(d));
                check_route(&topo, topo.route_minimal(from, to), from, to, 4);
                check_route(&topo, topo.route_valiant(from, to, salt), from, to, 6);
                prop_assert_eq!(topo.route(from, to, salt), topo.route_minimal(from, to));
            }
        }
    }

    /// Any **single global-link** failure on a ≥3-group dragonfly
    /// leaves every switch pair routable: the deterministic fallback
    /// chain finds a live, loop-free route of ≤ `MAX_REPAIR_PATH`
    /// switches that never crosses the dead link. (Only inter-group
    /// links are cut: an intra-group link can be a bridge — e.g. to a
    /// switch the `h % a` gateway assignment gives no trunk — so its
    /// loss legitimately partitions, which the engines report as
    /// `NoRoute` drops rather than hiding.)
    #[test]
    fn single_global_link_failure_leaves_all_pairs_routable(
        spec in resilient_spec_strategy(),
        salt in any::<u64>(),
    ) {
        let topo = Topology::new(spec, RoutingPolicy::Adaptive);
        let n = topo.switch_count();
        // Each undirected inter-group link once.
        let cuts: std::collections::BTreeSet<(usize, usize)> = topo
            .trunk_links()
            .iter()
            .filter(|&&(a, b)| topo.group_of(a) != topo.group_of(b))
            .map(|&(a, b)| (a.0.min(b.0), a.0.max(b.0)))
            .collect();
        for &(a, b) in &cuts {
            let mut mask = LivenessMask::default();
            mask.apply(FaultKind::LinkDown(SwitchId(a), SwitchId(b)));
            for s in 0..n {
                for d in 0..n {
                    let (from, to) = (SwitchId(s), SwitchId(d));
                    let path = fallback_route(&topo, &mask, from, to, salt)
                        .unwrap_or_else(|| {
                            panic!("cut ({a},{b}) partitioned {from}->{to}")
                        });
                    check_route(&topo, &path, from, to, MAX_REPAIR_PATH);
                    prop_assert!(
                        mask.route_live(&path),
                        "cut ({},{}): route {:?} crosses the dead link", a, b, path
                    );
                }
            }
        }
    }

    /// The trunk-link set is symmetric and exactly matches `connected`.
    #[test]
    fn trunk_links_match_connectivity(spec in spec_strategy()) {
        let topo = Topology::new(spec, RoutingPolicy::Minimal);
        let links = topo.trunk_links();
        for &(a, b) in &links {
            prop_assert!(topo.connected(a, b));
            prop_assert!(links.contains(&(b, a)), "asymmetric link {a}->{b}");
        }
        let n = topo.switch_count();
        let listed: std::collections::BTreeSet<_> =
            links.iter().map(|&(a, b)| (a.0, b.0)).collect();
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    listed.contains(&(a, b)),
                    topo.connected(SwitchId(a), SwitchId(b))
                );
            }
        }
    }
}
