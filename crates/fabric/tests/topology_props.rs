//! Property tests for the dragonfly topology: routing must be
//! deterministic, loop-free, link-valid and hop-bounded for arbitrary
//! (groups, switches/group, edge ports) within bounds, under both the
//! minimal and the Valiant policy.

use proptest::prelude::*;
use shs_fabric::{RoutingPolicy, SwitchId, Topology, TopologySpec};

fn spec_strategy() -> impl Strategy<Value = TopologySpec> {
    (1usize..6, 1usize..5, 1usize..8).prop_map(|(groups, switches_per_group, edge_ports)| {
        TopologySpec { groups, switches_per_group, edge_ports }
    })
}

fn check_route(topo: &Topology, path: &[SwitchId], from: SwitchId, to: SwitchId, max_len: usize) {
    assert_eq!(path.first(), Some(&from), "route starts at the source");
    assert_eq!(path.last(), Some(&to), "route ends at the destination");
    assert!(path.len() <= max_len, "route too long: {path:?}");
    let mut seen = std::collections::BTreeSet::new();
    for s in path {
        assert!(seen.insert(*s), "loop: {path:?} revisits {s}");
    }
    for w in path.windows(2) {
        assert!(topo.connected(w[0], w[1]), "{:?}: {} and {} not linked", path, w[0], w[1]);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Minimal routing: every switch pair gets a deterministic,
    /// loop-free route over existing links of at most 4 switches.
    #[test]
    fn minimal_routes_are_deterministic_and_loop_free(
        spec in spec_strategy(),
        salt in any::<u64>(),
    ) {
        let topo = Topology::new(spec, RoutingPolicy::Minimal);
        let rebuilt = Topology::new(spec, RoutingPolicy::Minimal);
        let n = topo.switch_count();
        for s in 0..n {
            for d in 0..n {
                let (from, to) = (SwitchId(s), SwitchId(d));
                let path = topo.route(from, to, salt);
                check_route(&topo, path, from, to, 4);
                // Deterministic: independent of the salt and of the
                // Topology instance (the table is a pure function of the
                // spec).
                prop_assert_eq!(&path, &topo.route(from, to, salt.wrapping_add(1)));
                prop_assert_eq!(&path, &rebuilt.route(from, to, salt));
            }
        }
    }

    /// Valiant routing: loop-free over existing links, at most 6
    /// switches, and deterministic in the salt.
    #[test]
    fn valiant_routes_are_deterministic_and_loop_free(
        spec in spec_strategy(),
        salt in any::<u64>(),
    ) {
        let topo = Topology::new(spec, RoutingPolicy::Valiant);
        let n = topo.switch_count();
        for s in 0..n {
            for d in 0..n {
                let (from, to) = (SwitchId(s), SwitchId(d));
                let path = topo.route(from, to, salt);
                check_route(&topo, path, from, to, 6);
                prop_assert_eq!(&path, &topo.route(from, to, salt));
            }
        }
    }

    /// The trunk-link set is symmetric and exactly matches `connected`.
    #[test]
    fn trunk_links_match_connectivity(spec in spec_strategy()) {
        let topo = Topology::new(spec, RoutingPolicy::Minimal);
        let links = topo.trunk_links();
        for &(a, b) in &links {
            prop_assert!(topo.connected(a, b));
            prop_assert!(links.contains(&(b, a)), "asymmetric link {a}->{b}");
        }
        let n = topo.switch_count();
        let listed: std::collections::BTreeSet<_> =
            links.iter().map(|&(a, b)| (a.0, b.0)).collect();
        for a in 0..n {
            for b in 0..n {
                prop_assert_eq!(
                    listed.contains(&(a, b)),
                    topo.connected(SwitchId(a), SwitchId(b))
                );
            }
        }
    }
}
