//! Property tests for fabric invariants: segmentation conservation,
//! VNI enforcement completeness, timing monotonicity, and arbitration
//! work conservation.

use proptest::prelude::*;
use shs_des::SimTime;
use shs_fabric::{
    segment, CostModel, DropReason, Fabric, NicAddr, TrafficClass, TransferOutcome, Vni,
    WrrArbiter,
};

fn tc_strategy() -> impl Strategy<Value = TrafficClass> {
    prop_oneof![
        Just(TrafficClass::LowLatency),
        Just(TrafficClass::Dedicated),
        Just(TrafficClass::BulkData),
        Just(TrafficClass::BestEffort),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Segmentation conserves payload, respects the MTU, and numbers
    /// packets densely with exactly one last-of-message marker.
    #[test]
    fn segmentation_invariants(len in 0u64..6_000_000, tc in tc_strategy()) {
        let m = CostModel::default();
        let pkts = segment(&m, NicAddr(1), NicAddr(2), Vni(3), tc, 9, len);
        prop_assert_eq!(pkts.iter().map(|p| p.payload_len as u64).sum::<u64>(), len);
        prop_assert!(pkts.iter().all(|p| p.payload_len <= m.mtu));
        prop_assert_eq!(pkts.iter().filter(|p| p.last_of_msg).count(), 1);
        prop_assert!(pkts.last().unwrap().last_of_msg);
        for (i, p) in pkts.iter().enumerate() {
            prop_assert_eq!(p.seq as usize, i);
        }
        // Wire bytes match the closed-form model.
        let wire: u64 = pkts.iter().map(|p| p.wire_bytes(&m)).sum();
        prop_assert_eq!(wire, m.wire_bytes(len));
    }

    /// Enforcement completeness: a transfer is delivered *iff* both ports
    /// hold the VNI; otherwise it is dropped with an enforcement reason.
    #[test]
    fn vni_enforcement_is_complete(
        grant_src in any::<bool>(),
        grant_dst in any::<bool>(),
        vni in 2u16..100,
        len in 1u64..1_000_000,
    ) {
        let mut f = Fabric::new(4);
        f.attach(NicAddr(1));
        f.attach(NicAddr(2));
        if grant_src {
            f.grant_vni(NicAddr(1), Vni(vni)).unwrap();
        }
        if grant_dst {
            f.grant_vni(NicAddr(2), Vni(vni)).unwrap();
        }
        let out = f.transfer(SimTime::ZERO, NicAddr(1), NicAddr(2), Vni(vni),
                             TrafficClass::Dedicated, len, 1);
        match (grant_src, grant_dst) {
            (true, true) => {
                let delivered = matches!(out, TransferOutcome::Delivered { .. });
                prop_assert!(delivered, "expected delivery, got {:?}", out);
            }
            (false, _) => prop_assert_eq!(out, TransferOutcome::Dropped(DropReason::VniDeniedIngress)),
            (true, false) => prop_assert_eq!(out, TransferOutcome::Dropped(DropReason::VniDeniedEgress)),
        }
    }

    /// Timing monotonicity: arrivals never precede departures, larger
    /// messages never arrive faster, and back-to-back sends never reorder.
    #[test]
    fn transfer_timing_is_monotone(
        lens in prop::collection::vec(1u64..2_000_000, 1..12),
        start_ns in 0u64..1_000_000,
    ) {
        let mut f = Fabric::new(4);
        f.attach(NicAddr(1));
        f.attach(NicAddr(2));
        f.grant_vni(NicAddr(1), Vni(1)).unwrap();
        f.grant_vni(NicAddr(2), Vni(1)).unwrap();
        let now = SimTime::from_nanos(start_ns);
        let mut last_arrival = SimTime::ZERO;
        for (i, len) in lens.iter().enumerate() {
            let TransferOutcome::Delivered { arrival, src_done } = f.transfer(
                now, NicAddr(1), NicAddr(2), Vni(1), TrafficClass::Dedicated, *len, i as u64,
            ) else {
                return Err(TestCaseError::fail("unexpected drop"));
            };
            prop_assert!(src_done >= now);
            prop_assert!(arrival >= src_done, "arrival before departure");
            prop_assert!(arrival >= last_arrival, "reordering on one path");
            last_arrival = arrival;
        }
    }

    /// The unloaded one-way time grows monotonically with message size.
    #[test]
    fn unloaded_time_is_monotone(a in 0u64..4_000_000, b in 0u64..4_000_000) {
        let f = Fabric::new(2);
        let (lo, hi) = (a.min(b), a.max(b));
        prop_assert!(f.unloaded_ns(lo) <= f.unloaded_ns(hi));
    }

    /// The WRR arbiter conserves work: everything enqueued is dequeued
    /// exactly once regardless of class mix.
    #[test]
    fn arbiter_conserves_packets(
        msgs in prop::collection::vec((tc_strategy(), 1u64..10_000), 1..30),
    ) {
        let m = CostModel::default();
        let mut arb = WrrArbiter::new(m.mtu as i64 + m.header_bytes as i64);
        let mut expected = 0usize;
        for (i, (tc, len)) in msgs.iter().enumerate() {
            let pkts = segment(&m, NicAddr(1), NicAddr(2), Vni(1), *tc, i as u64, *len);
            expected += pkts.len();
            for p in pkts {
                arb.enqueue(p);
            }
        }
        let mut got = 0usize;
        while arb.dequeue().is_some() {
            got += 1;
        }
        prop_assert_eq!(got, expected);
        prop_assert!(arb.is_empty());
    }
}
