//! Lookahead-safety property for the sharded fabric engine: over
//! arbitrary dragonfly topologies (≤ 4 groups), routing policies and
//! sweep workloads, **no shard ever receives a cross-group event with a
//! timestamp below its local clock** — the conservative-sync invariant
//! `min_inject_slack ≥ 0` — and every launched message is accounted
//! for (delivered or congestion-dropped), identically at every thread
//! count.
//!
//! The slack is measured at the injection point by the coordinator
//! itself (`ParallelSim::min_inject_slack`), so a violation cannot hide
//! behind the debug-only clamp in `ShardSim::at`.

use proptest::prelude::*;
use shs_fabric::{run_sweep, RoutingPolicy, SweepConfig, TopologySpec};

fn config_strategy() -> impl Strategy<Value = SweepConfig> {
    (
        (1usize..=4, 1usize..=3, 1usize..=3), // groups, switches/group, nodes/switch
        (
            prop_oneof![Just(RoutingPolicy::Minimal), Just(RoutingPolicy::Valiant)],
            1u32..=6,                                        // messages per node
            prop_oneof![Just(64u64), Just(4096), Just(262_144)], // payload
        ),
        (1u64..=5_000, 0u32..=3, 0u64..=(1 << 48)), // interval ns, cross cadence, seed
    )
        .prop_map(|((groups, spg, nps), (policy, mpn, payload), (interval, cross, seed))| {
            SweepConfig {
                spec: TopologySpec {
                    groups,
                    switches_per_group: spg,
                    // At least as many edge ports as attached nodes.
                    edge_ports: nps.max(2),
                },
                policy,
                nodes_per_switch: nps,
                messages_per_node: mpn,
                payload_bytes: payload,
                interval_ns: interval,
                cross_group_every: cross,
                seed,
                ..SweepConfig::default()
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn no_shard_receives_an_event_below_its_clock(cfg in config_strategy()) {
        let base = run_sweep(&cfg, 1);
        // The conservative-sync invariant, measured at injection.
        if let Some(slack) = base.min_inject_slack {
            prop_assert!(slack >= 0, "conservative violation: slack {}ns", slack);
        }
        // Message conservation: launched = delivered + dropped.
        prop_assert!(base.conserved(), "{:?}", base.totals);
        // Shard count follows the partition, never the thread count.
        prop_assert_eq!(base.shards, cfg.spec.groups);
        // And the whole result is thread-count invariant.
        for threads in [2usize, 4] {
            let run = run_sweep(&cfg, threads);
            if let Some(slack) = run.min_inject_slack {
                prop_assert!(slack >= 0);
            }
            prop_assert_eq!(&run, &base, "threads={}", threads);
        }
    }
}
