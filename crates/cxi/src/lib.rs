//! # shs-cxi — the CXI driver and userspace library model
//!
//! The layer the paper patches (§III-A): CXI services with member-based
//! authentication at RDMA-endpoint creation. Three designs are modelled
//! side by side, exactly as the paper discusses them:
//!
//! 1. **Stock driver** ([`CxiDriver::stock`]): legacy in-namespace UID/GID
//!    checks — spoofable by container root inside a user namespace.
//! 2. **Userns-aware driver**: host-resolved UID/GID — not spoofable, but
//!    unable to distinguish Kubernetes containers (one host user).
//! 3. **Extended driver** ([`CxiDriver::extended`]): adds the **netns
//!    member type**, authenticating by the kernel-assigned network
//!    namespace inode read via procfs. This is the paper's contribution.
//!
//! Also here: the [`drc::DrcBroker`] modelling HPE's pre-existing Dynamic
//! RDMA Credential path (§II-C), used as a management-plane baseline.

pub mod drc;
pub mod driver;
pub mod libcxi;
pub mod svc;

pub use drc::{DrcBroker, DrcCredential, DrcError, DrcId};
pub use driver::{CxiDriver, CxiDriverParams, CxiError};
pub use libcxi::CxiDevice;
pub use svc::{AuthMode, CxiService, CxiServiceDesc, SvcMember};
