//! The userspace library layer (`libcxi` equivalent): a facade over the
//! per-node driver + NIC pair, mirroring the call flow the paper patches
//! (§II-C/§III-A): applications ask for a VNI, the library scans CXI
//! services for one that admits the caller and offers the VNI, then
//! allocates the endpoint.

use shs_cassini::{CassiniNic, EpIdx, SvcId};
use shs_fabric::{TrafficClass, Vni};
use shs_oslinux::{Creds, Host, Pid};

use crate::driver::{CxiDriver, CxiError};
use crate::svc::CxiServiceDesc;

/// One node's CXI device: the driver instance plus the NIC it manages.
/// This is what `/dev/cxi0` plus the loaded kernel module amount to.
#[derive(Debug)]
pub struct CxiDevice {
    /// The kernel driver state.
    pub driver: CxiDriver,
    /// The Cassini NIC.
    pub nic: CassiniNic,
}

impl CxiDevice {
    /// Assemble a device.
    pub fn new(driver: CxiDriver, nic: CassiniNic) -> Self {
        CxiDevice { driver, nic }
    }

    /// `cxil_alloc_svc`: privileged service creation.
    pub fn alloc_svc(&mut self, caller: &Creds, desc: CxiServiceDesc) -> Result<SvcId, CxiError> {
        self.driver.svc_alloc(caller, desc, &mut self.nic)
    }

    /// `cxil_destroy_svc`: privileged service destruction.
    pub fn destroy_svc(&mut self, caller: &Creds, id: SvcId) -> Result<usize, CxiError> {
        self.driver.svc_destroy(caller, id, &mut self.nic)
    }

    /// The application-side endpoint allocation flow: find an admitting
    /// service for `vni`, then allocate the endpoint under it.
    pub fn ep_alloc(
        &mut self,
        host: &Host,
        pid: Pid,
        vni: Vni,
        tc: TrafficClass,
    ) -> Result<EpIdx, CxiError> {
        let svc = self.driver.find_service(host, pid, vni)?;
        self.driver.ep_alloc(host, pid, svc, vni, tc, &mut self.nic)
    }

    /// Endpoint allocation against an explicitly named service.
    pub fn ep_alloc_on(
        &mut self,
        host: &Host,
        pid: Pid,
        svc: SvcId,
        vni: Vni,
        tc: TrafficClass,
    ) -> Result<EpIdx, CxiError> {
        self.driver.ep_alloc(host, pid, svc, vni, tc, &mut self.nic)
    }

    /// Free an endpoint.
    pub fn ep_free(&mut self, ep: EpIdx) -> Result<(), CxiError> {
        Ok(self.nic.free_endpoint(ep)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::svc::SvcMember;
    use shs_cassini::CassiniParams;
    use shs_des::DetRng;
    use shs_fabric::NicAddr;
    use shs_oslinux::{Gid, Uid};

    fn device() -> (Host, CxiDevice) {
        let host = Host::new("n0");
        let nic = CassiniNic::new(NicAddr(1), CassiniParams::default(), DetRng::new(3));
        (host, CxiDevice::new(CxiDriver::extended(), nic))
    }

    #[test]
    fn ep_alloc_scans_services_like_libcxi() {
        let (mut host, mut dev) = device();
        let root = host.credentials(Pid(1)).unwrap();
        let app = host.spawn_detached("app", Uid(1000), Gid(1000));
        let desc = CxiServiceDesc {
            members: vec![SvcMember::Uid(Uid(1000))],
            vnis: vec![Vni(5)],
            limits: Default::default(),
            label: "app".into(),
        };
        dev.alloc_svc(&root, desc).unwrap();
        let ep = dev.ep_alloc(&host, app, Vni(5), TrafficClass::Dedicated).unwrap();
        assert_eq!(dev.nic.endpoint(ep).unwrap().vni, Vni(5));
        dev.ep_free(ep).unwrap();
        assert_eq!(
            dev.ep_alloc(&host, app, Vni(6), TrafficClass::Dedicated).unwrap_err(),
            CxiError::AuthFailed
        );
    }

    #[test]
    fn destroy_svc_counts_endpoints() {
        let (mut host, mut dev) = device();
        let root = host.credentials(Pid(1)).unwrap();
        let app = host.spawn_detached("app", Uid(1000), Gid(1000));
        let id = dev
            .alloc_svc(
                &root,
                CxiServiceDesc {
                    members: vec![SvcMember::AllUsers],
                    vnis: vec![Vni(5)],
                    limits: Default::default(),
                    label: "x".into(),
                },
            )
            .unwrap();
        dev.ep_alloc(&host, app, Vni(5), TrafficClass::Dedicated).unwrap();
        dev.ep_alloc(&host, app, Vni(5), TrafficClass::Dedicated).unwrap();
        assert_eq!(dev.destroy_svc(&root, id).unwrap(), 2);
    }
}
