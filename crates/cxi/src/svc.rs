//! CXI service descriptions and member types.
//!
//! A CXI service (SVC) grants a set of *members* access to a set of VNIs
//! and can bound their resource usage (§II-C). The stock driver knows
//! UID and GID members; this reproduction adds the paper's **network
//! namespace member type** (§III-A) and, for the "globally accessible
//! VNI" baseline of §IV-A, an unrestricted member matching the driver's
//! default service behaviour.

use shs_cassini::SvcLimits;
use shs_fabric::Vni;
use shs_oslinux::{Gid, NetNsId, Uid};

/// Who may use a CXI service.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SvcMember {
    /// Authenticate by user id (stock driver).
    Uid(Uid),
    /// Authenticate by group id (stock driver).
    Gid(Gid),
    /// Authenticate by network-namespace inode — the paper's extension.
    /// Kernel-assigned and unmodifiable from inside a container, unlike
    /// UID/GID under user namespaces.
    NetNs(NetNsId),
    /// Unrestricted (the driver's default service semantics; used by the
    /// single-tenant baseline).
    AllUsers,
}

impl SvcMember {
    /// Whether this member kind requires the netns driver extension.
    pub fn needs_netns_extension(&self) -> bool {
        matches!(self, SvcMember::NetNs(_))
    }
}

/// How the driver reads the credentials of a calling process.
///
/// The paper walks through exactly these three designs in §III: the stock
/// driver ([`AuthMode::Legacy`]) is spoofable inside user namespaces; a
/// userns-aware driver ([`AuthMode::UserNsAware`]) fixes spoofing but
/// cannot tell Kubernetes containers apart (they all run as one host
/// user); the netns member type works in both worlds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AuthMode {
    /// Compare against namespace-local UID/GID (stock driver).
    Legacy,
    /// Compare against host-resolved UID/GID.
    #[default]
    UserNsAware,
}

/// Request to create a CXI service.
#[derive(Debug, Clone)]
pub struct CxiServiceDesc {
    /// Authorized members (any match admits the caller).
    pub members: Vec<SvcMember>,
    /// VNIs the service may use.
    pub vnis: Vec<Vni>,
    /// Resource limits to program into the NIC.
    pub limits: SvcLimits,
    /// Free-form label for diagnostics (e.g. the owning container id).
    pub label: String,
}

impl CxiServiceDesc {
    /// The default, unrestricted service over the global VNI — what a
    /// single-tenant HPC deployment (and the paper's `vni:false` baseline)
    /// effectively runs with.
    pub fn default_service() -> Self {
        CxiServiceDesc {
            members: vec![SvcMember::AllUsers],
            vnis: vec![Vni::GLOBAL],
            limits: SvcLimits::default(),
            label: "default".to_string(),
        }
    }
}

/// A registered CXI service (driver bookkeeping).
#[derive(Debug, Clone)]
pub struct CxiService {
    /// Driver-assigned id (also programmed into the NIC).
    pub id: shs_cassini::SvcId,
    /// Authorized members.
    pub members: Vec<SvcMember>,
    /// VNIs the service may use.
    pub vnis: Vec<Vni>,
    /// Resource limits.
    pub limits: SvcLimits,
    /// Administrative state.
    pub enabled: bool,
    /// Diagnostic label.
    pub label: String,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_service_is_global_and_unrestricted() {
        let d = CxiServiceDesc::default_service();
        assert_eq!(d.vnis, vec![Vni::GLOBAL]);
        assert_eq!(d.members, vec![SvcMember::AllUsers]);
    }

    #[test]
    fn netns_member_flags_extension_requirement() {
        assert!(SvcMember::NetNs(NetNsId(1)).needs_netns_extension());
        assert!(!SvcMember::Uid(Uid(0)).needs_netns_extension());
        assert!(!SvcMember::Gid(Gid(0)).needs_netns_extension());
        assert!(!SvcMember::AllUsers.needs_netns_extension());
    }
}
