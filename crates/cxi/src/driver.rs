//! The CXI kernel driver model: privileged service management and the
//! authenticated endpoint-allocation path.
//!
//! Authentication happens **only** at endpoint creation (§II-C:
//! "Authentication against CXI services is only performed during endpoint
//! creation"), after which communication is kernel-bypass. The member
//! check below is therefore the entire control-plane cost on the data
//! path — once per application start, never per message.

use shs_cassini::{CassiniNic, EpIdx, NicError, ServiceEntry, SvcId};
use shs_des::SimDur;
use shs_fabric::{TrafficClass, Vni};
use shs_oslinux::{Creds, Host, OsError, Pid, Uid};

use crate::svc::{AuthMode, CxiService, CxiServiceDesc, SvcMember};

/// Driver operation errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CxiError {
    /// Caller lacks privilege for a management operation.
    NotPermitted,
    /// Service id unknown.
    NoSuchService,
    /// No service member matched the caller's credentials.
    AuthFailed,
    /// The requested VNI is not offered by the service.
    VniNotAllowed,
    /// A netns member was supplied but the driver extension is not loaded.
    NetNsExtensionMissing,
    /// Underlying NIC error.
    Nic(NicError),
    /// Underlying OS error.
    Os(OsError),
}

impl From<NicError> for CxiError {
    fn from(e: NicError) -> Self {
        CxiError::Nic(e)
    }
}

impl From<OsError> for CxiError {
    fn from(e: OsError) -> Self {
        CxiError::Os(e)
    }
}

impl core::fmt::Display for CxiError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CxiError::NotPermitted => f.write_str("not permitted"),
            CxiError::NoSuchService => f.write_str("no such CXI service"),
            CxiError::AuthFailed => f.write_str("no matching service member"),
            CxiError::VniNotAllowed => f.write_str("VNI not offered by service"),
            CxiError::NetNsExtensionMissing => {
                f.write_str("netns member type requires the extended driver")
            }
            CxiError::Nic(e) => write!(f, "NIC: {e}"),
            CxiError::Os(e) => write!(f, "OS: {e}"),
        }
    }
}

impl std::error::Error for CxiError {}

/// Control-path timing constants (these are *not* on the message path;
/// they surface in job-admission overhead, Figs. 9-12).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CxiDriverParams {
    /// Service creation: ioctl + NIC programming.
    pub svc_alloc: SimDur,
    /// Service destruction.
    pub svc_destroy: SimDur,
    /// Endpoint allocation: auth + queue setup.
    pub ep_alloc: SimDur,
}

impl Default for CxiDriverParams {
    fn default() -> Self {
        CxiDriverParams {
            svc_alloc: SimDur::from_micros(800),
            svc_destroy: SimDur::from_micros(500),
            ep_alloc: SimDur::from_micros(60),
        }
    }
}

/// The per-node CXI driver instance.
#[derive(Debug)]
pub struct CxiDriver {
    auth_mode: AuthMode,
    /// Whether the paper's netns member-type patch is applied.
    netns_extension: bool,
    params: CxiDriverParams,
    services: Vec<CxiService>,
    next_svc: u32,
}

impl CxiDriver {
    /// Stock driver: legacy auth, no netns members.
    pub fn stock() -> Self {
        CxiDriver::new(AuthMode::Legacy, false, CxiDriverParams::default())
    }

    /// The paper's extended driver: userns-aware credentials *and* the
    /// netns member type.
    pub fn extended() -> Self {
        CxiDriver::new(AuthMode::UserNsAware, true, CxiDriverParams::default())
    }

    /// Fully explicit construction.
    pub fn new(auth_mode: AuthMode, netns_extension: bool, params: CxiDriverParams) -> Self {
        CxiDriver { auth_mode, netns_extension, params, services: Vec::new(), next_svc: 1 }
    }

    /// Timing constants.
    pub fn params(&self) -> &CxiDriverParams {
        &self.params
    }

    /// Whether the netns extension is loaded.
    pub fn has_netns_extension(&self) -> bool {
        self.netns_extension
    }

    /// The configured authentication mode.
    pub fn auth_mode(&self) -> AuthMode {
        self.auth_mode
    }

    /// Registered services (diagnostics; `cxi_service list` equivalent).
    pub fn services(&self) -> &[CxiService] {
        &self.services
    }

    /// Look up a service.
    pub fn service(&self, id: SvcId) -> Option<&CxiService> {
        self.services.iter().find(|s| s.id == id)
    }

    fn is_privileged(caller: &Creds) -> bool {
        caller.host_uid == Uid::ROOT
    }

    /// Create a CXI service (privileged: root on the host, like the real
    /// driver's `CXI_OP_SVC_ALLOC`). Programs the NIC service table.
    pub fn svc_alloc(
        &mut self,
        caller: &Creds,
        desc: CxiServiceDesc,
        nic: &mut CassiniNic,
    ) -> Result<SvcId, CxiError> {
        if !Self::is_privileged(caller) {
            return Err(CxiError::NotPermitted);
        }
        if !self.netns_extension && desc.members.iter().any(|m| m.needs_netns_extension()) {
            return Err(CxiError::NetNsExtensionMissing);
        }
        let id = SvcId(self.next_svc);
        self.next_svc += 1;
        nic.configure_service(ServiceEntry {
            id,
            vnis: desc.vnis.clone(),
            limits: desc.limits,
            enabled: true,
        });
        self.services.push(CxiService {
            id,
            members: desc.members,
            vnis: desc.vnis,
            limits: desc.limits,
            enabled: true,
            label: desc.label,
        });
        Ok(id)
    }

    /// Destroy a service (privileged). Tears down its NIC endpoints.
    pub fn svc_destroy(
        &mut self,
        caller: &Creds,
        id: SvcId,
        nic: &mut CassiniNic,
    ) -> Result<usize, CxiError> {
        if !Self::is_privileged(caller) {
            return Err(CxiError::NotPermitted);
        }
        let before = self.services.len();
        self.services.retain(|s| s.id != id);
        if self.services.len() == before {
            return Err(CxiError::NoSuchService);
        }
        Ok(nic.remove_service(id))
    }

    /// Destroy every service whose label matches a predicate. Used by the
    /// CNI plugin's DEL handler ("deletes any CXI service associated with
    /// the container being deleted", §III-B). Returns destroyed ids.
    pub fn svc_destroy_matching(
        &mut self,
        caller: &Creds,
        nic: &mut CassiniNic,
        mut pred: impl FnMut(&CxiService) -> bool,
    ) -> Result<Vec<SvcId>, CxiError> {
        if !Self::is_privileged(caller) {
            return Err(CxiError::NotPermitted);
        }
        let doomed: Vec<SvcId> =
            self.services.iter().filter(|s| pred(s)).map(|s| s.id).collect();
        self.services.retain(|s| !doomed.contains(&s.id));
        for id in &doomed {
            nic.remove_service(*id);
        }
        Ok(doomed)
    }

    /// Does any member of `svc` admit the caller under the configured
    /// auth mode? This is the §III-A member check.
    fn member_matches(&self, svc: &CxiService, creds: &Creds) -> bool {
        svc.members.iter().any(|m| match m {
            SvcMember::AllUsers => true,
            SvcMember::Uid(uid) => match self.auth_mode {
                AuthMode::Legacy => creds.uid == *uid,
                AuthMode::UserNsAware => creds.host_uid == *uid,
            },
            SvcMember::Gid(gid) => match self.auth_mode {
                AuthMode::Legacy => creds.gid == *gid,
                AuthMode::UserNsAware => creds.host_gid == *gid,
            },
            // The extended driver reads the netns inode via procfs —
            // kernel-owned state the container cannot influence.
            SvcMember::NetNs(ns) => self.netns_extension && creds.netns == *ns,
        })
    }

    /// Authenticated endpoint allocation: the path every RDMA application
    /// takes once at startup. Extracts the caller's credentials from the
    /// kernel (including the procfs netns inode), finds the service,
    /// checks membership and VNI, then programs the NIC.
    pub fn ep_alloc(
        &self,
        host: &Host,
        pid: Pid,
        svc_id: SvcId,
        vni: Vni,
        tc: TrafficClass,
        nic: &mut CassiniNic,
    ) -> Result<EpIdx, CxiError> {
        let creds = host.credentials(pid)?;
        let svc = self.service(svc_id).ok_or(CxiError::NoSuchService)?;
        if !svc.enabled {
            return Err(CxiError::NoSuchService);
        }
        if !self.member_matches(svc, &creds) {
            return Err(CxiError::AuthFailed);
        }
        if !svc.vnis.contains(&vni) {
            return Err(CxiError::VniNotAllowed);
        }
        Ok(nic.alloc_endpoint(svc_id, vni, tc)?)
    }

    /// Find the first enabled service that admits the caller and offers
    /// `vni` — what libcxi does when the application does not name a
    /// service explicitly ("checks whether any CXI service exists that
    /// (1) lists the requesting user ... (2) is authorized to use the
    /// requested VNIs", §II-C).
    pub fn find_service(&self, host: &Host, pid: Pid, vni: Vni) -> Result<SvcId, CxiError> {
        let creds = host.credentials(pid)?;
        self.services
            .iter()
            .find(|s| s.enabled && s.vnis.contains(&vni) && self.member_matches(s, &creds))
            .map(|s| s.id)
            .ok_or(CxiError::AuthFailed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use shs_cassini::CassiniParams;
    use shs_des::DetRng;
    use shs_fabric::NicAddr;
    use shs_oslinux::{Gid, IdMapEntry};

    fn rig(driver: CxiDriver) -> (Host, CxiDriver, CassiniNic) {
        let host = Host::new("n0");
        let nic = CassiniNic::new(NicAddr(1), CassiniParams::default(), DetRng::new(5));
        (host, driver, nic)
    }

    fn root_creds(host: &Host) -> Creds {
        host.credentials(Pid(1)).unwrap()
    }

    fn wide_map() -> Vec<IdMapEntry> {
        vec![IdMapEntry { inside_start: 0, outside_start: 100_000, count: 65_536 }]
    }

    #[test]
    fn svc_alloc_requires_root() {
        let (mut host, mut drv, mut nic) = rig(CxiDriver::extended());
        let user = host.spawn_detached("user", Uid(1000), Gid(1000));
        let creds = host.credentials(user).unwrap();
        let err = drv
            .svc_alloc(&creds, CxiServiceDesc::default_service(), &mut nic)
            .unwrap_err();
        assert_eq!(err, CxiError::NotPermitted);
        drv.svc_alloc(&root_creds(&host), CxiServiceDesc::default_service(), &mut nic)
            .unwrap();
    }

    #[test]
    fn uid_member_admits_matching_user() {
        let (mut host, mut drv, mut nic) = rig(CxiDriver::extended());
        let desc = CxiServiceDesc {
            members: vec![SvcMember::Uid(Uid(1000))],
            vnis: vec![Vni(7)],
            limits: Default::default(),
            label: "t".into(),
        };
        let id = drv.svc_alloc(&root_creds(&host), desc, &mut nic).unwrap();
        let alice = host.spawn_detached("alice", Uid(1000), Gid(1000));
        let bob = host.spawn_detached("bob", Uid(2000), Gid(2000));
        drv.ep_alloc(&host, alice, id, Vni(7), TrafficClass::Dedicated, &mut nic)
            .unwrap();
        assert_eq!(
            drv.ep_alloc(&host, bob, id, Vni(7), TrafficClass::Dedicated, &mut nic)
                .unwrap_err(),
            CxiError::AuthFailed
        );
    }

    #[test]
    fn gid_member_admits_matching_group() {
        let (mut host, mut drv, mut nic) = rig(CxiDriver::extended());
        let desc = CxiServiceDesc {
            members: vec![SvcMember::Gid(Gid(500))],
            vnis: vec![Vni(7)],
            limits: Default::default(),
            label: "t".into(),
        };
        let id = drv.svc_alloc(&root_creds(&host), desc, &mut nic).unwrap();
        let member = host.spawn_detached("m", Uid(1), Gid(500));
        let outsider = host.spawn_detached("o", Uid(1), Gid(501));
        drv.ep_alloc(&host, member, id, Vni(7), TrafficClass::Dedicated, &mut nic)
            .unwrap();
        assert_eq!(
            drv.ep_alloc(&host, outsider, id, Vni(7), TrafficClass::Dedicated, &mut nic)
                .unwrap_err(),
            CxiError::AuthFailed
        );
    }

    #[test]
    fn vni_must_be_offered_by_service() {
        let (host, mut drv, mut nic) = rig(CxiDriver::extended());
        let id = drv
            .svc_alloc(&root_creds(&host), CxiServiceDesc::default_service(), &mut nic)
            .unwrap();
        let err = drv
            .ep_alloc(&host, Pid(1), id, Vni(99), TrafficClass::Dedicated, &mut nic)
            .unwrap_err();
        assert_eq!(err, CxiError::VniNotAllowed);
    }

    #[test]
    fn stock_driver_is_spoofable_inside_userns() {
        // The motivating vulnerability (§III): with the stock driver,
        // container root setuid()s to the victim uid and authenticates.
        let (mut host, mut drv, mut nic) = rig(CxiDriver::stock());
        let victim_svc = CxiServiceDesc {
            members: vec![SvcMember::Uid(Uid(4242))],
            vnis: vec![Vni(7)],
            limits: Default::default(),
            label: "victim".into(),
        };
        let id = drv.svc_alloc(&root_creds(&host), victim_svc, &mut nic).unwrap();
        let mallory = host.spawn_detached("mallory", Uid(3000), Gid(3000));
        host.unshare_user_ns(mallory, wide_map(), wide_map(), Uid::ROOT, Gid::ROOT)
            .unwrap();
        host.setuid(mallory, Uid(4242)).unwrap();
        // Attack succeeds against the stock driver:
        drv.ep_alloc(&host, mallory, id, Vni(7), TrafficClass::Dedicated, &mut nic)
            .expect("stock driver is vulnerable by design");
    }

    #[test]
    fn userns_aware_driver_defeats_uid_spoofing() {
        let (mut host, mut drv, mut nic) = rig(CxiDriver::extended());
        let victim_svc = CxiServiceDesc {
            members: vec![SvcMember::Uid(Uid(4242))],
            vnis: vec![Vni(7)],
            limits: Default::default(),
            label: "victim".into(),
        };
        let id = drv.svc_alloc(&root_creds(&host), victim_svc, &mut nic).unwrap();
        let mallory = host.spawn_detached("mallory", Uid(3000), Gid(3000));
        host.unshare_user_ns(mallory, wide_map(), wide_map(), Uid::ROOT, Gid::ROOT)
            .unwrap();
        host.setuid(mallory, Uid(4242)).unwrap();
        assert_eq!(
            drv.ep_alloc(&host, mallory, id, Vni(7), TrafficClass::Dedicated, &mut nic)
                .unwrap_err(),
            CxiError::AuthFailed,
            "host-resolved uid is 104242, not 4242"
        );
    }

    #[test]
    fn netns_member_admits_only_the_namespace() {
        let (mut host, mut drv, mut nic) = rig(CxiDriver::extended());
        let a = host.spawn_detached("pod-a", Uid(1000), Gid(1000));
        let b = host.spawn_detached("pod-b", Uid(1000), Gid(1000));
        let ns_a = host.unshare_net_ns(a).unwrap();
        host.unshare_net_ns(b).unwrap();
        let desc = CxiServiceDesc {
            members: vec![SvcMember::NetNs(ns_a)],
            vnis: vec![Vni(9)],
            limits: Default::default(),
            label: "pod-a".into(),
        };
        let id = drv.svc_alloc(&root_creds(&host), desc, &mut nic).unwrap();
        drv.ep_alloc(&host, a, id, Vni(9), TrafficClass::Dedicated, &mut nic)
            .unwrap();
        // Same uid/gid, different namespace: denied.
        assert_eq!(
            drv.ep_alloc(&host, b, id, Vni(9), TrafficClass::Dedicated, &mut nic)
                .unwrap_err(),
            CxiError::AuthFailed
        );
    }

    #[test]
    fn netns_auth_survives_uid_games() {
        // Even with full setuid freedom inside the container, the netns
        // check is unaffected — the kernel owns the namespace identity.
        let (mut host, mut drv, mut nic) = rig(CxiDriver::extended());
        let pod = host.spawn_detached("pod", Uid(1000), Gid(1000));
        let ns = host.unshare_net_ns(pod).unwrap();
        host.unshare_user_ns(pod, wide_map(), wide_map(), Uid::ROOT, Gid::ROOT)
            .unwrap();
        let desc = CxiServiceDesc {
            members: vec![SvcMember::NetNs(ns)],
            vnis: vec![Vni(9)],
            limits: Default::default(),
            label: "pod".into(),
        };
        let id = drv.svc_alloc(&root_creds(&host), desc, &mut nic).unwrap();
        host.setuid(pod, Uid(12345)).unwrap();
        drv.ep_alloc(&host, pod, id, Vni(9), TrafficClass::Dedicated, &mut nic)
            .expect("netns member is uid-independent");
    }

    #[test]
    fn stock_driver_rejects_netns_members() {
        let (host, mut drv, mut nic) = rig(CxiDriver::stock());
        let desc = CxiServiceDesc {
            members: vec![SvcMember::NetNs(shs_oslinux::NetNsId(1))],
            vnis: vec![Vni(9)],
            limits: Default::default(),
            label: "x".into(),
        };
        assert_eq!(
            drv.svc_alloc(&root_creds(&host), desc, &mut nic).unwrap_err(),
            CxiError::NetNsExtensionMissing
        );
    }

    #[test]
    fn find_service_scans_by_membership_and_vni() {
        let (mut host, mut drv, mut nic) = rig(CxiDriver::extended());
        let alice = host.spawn_detached("alice", Uid(1000), Gid(1000));
        let d1 = CxiServiceDesc {
            members: vec![SvcMember::Uid(Uid(2000))],
            vnis: vec![Vni(7)],
            limits: Default::default(),
            label: "other".into(),
        };
        let d2 = CxiServiceDesc {
            members: vec![SvcMember::Uid(Uid(1000))],
            vnis: vec![Vni(7)],
            limits: Default::default(),
            label: "mine".into(),
        };
        drv.svc_alloc(&root_creds(&host), d1, &mut nic).unwrap();
        let id2 = drv.svc_alloc(&root_creds(&host), d2, &mut nic).unwrap();
        assert_eq!(drv.find_service(&host, alice, Vni(7)).unwrap(), id2);
        assert_eq!(
            drv.find_service(&host, alice, Vni(8)).unwrap_err(),
            CxiError::AuthFailed
        );
    }

    #[test]
    fn svc_destroy_matching_by_label() {
        let (host, mut drv, mut nic) = rig(CxiDriver::extended());
        let root = root_creds(&host);
        for label in ["ctr-1", "ctr-1", "ctr-2"] {
            let desc = CxiServiceDesc {
                members: vec![SvcMember::AllUsers],
                vnis: vec![Vni(1)],
                limits: Default::default(),
                label: label.into(),
            };
            drv.svc_alloc(&root, desc, &mut nic).unwrap();
        }
        let gone = drv
            .svc_destroy_matching(&root, &mut nic, |s| s.label == "ctr-1")
            .unwrap();
        assert_eq!(gone.len(), 2);
        assert_eq!(drv.services().len(), 1);
        assert_eq!(drv.services()[0].label, "ctr-2");
    }

    #[test]
    fn svc_destroy_unknown_id_errors() {
        let (host, mut drv, mut nic) = rig(CxiDriver::extended());
        assert_eq!(
            drv.svc_destroy(&root_creds(&host), SvcId(42), &mut nic).unwrap_err(),
            CxiError::NoSuchService
        );
    }
}
