//! Dynamic RDMA Credentials (DRC).
//!
//! §II-C mentions the "HPE-provided Dynamic RDMA Credential (DRC)
//! mechanism ... which allows users to request new VNIs at run time" as
//! the pre-existing alternative to static onboarding or Slurm-managed
//! services. We model a minimal broker: credentials own a VNI drawn from
//! a dedicated range and list the uids allowed to redeem them; redeeming
//! realises a CXI service on a node. The VNI Service of the paper
//! supersedes this for Kubernetes, but the broker is kept as a baseline
//! management path (and exercised by the ablation bench).

use std::collections::BTreeMap;

use shs_cassini::SvcId;
use shs_fabric::Vni;
use shs_oslinux::{Creds, Uid};

use crate::driver::CxiError;
use crate::libcxi::CxiDevice;
use crate::svc::{CxiServiceDesc, SvcMember};

/// A credential handle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct DrcId(pub u64);

/// An issued credential.
#[derive(Debug, Clone)]
pub struct DrcCredential {
    /// Handle.
    pub id: DrcId,
    /// VNI owned by this credential.
    pub vni: Vni,
    /// Uids allowed to redeem the credential (host uids).
    pub authorized: Vec<Uid>,
}

/// DRC broker errors.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DrcError {
    /// The VNI range is exhausted.
    Exhausted,
    /// Unknown credential.
    NoSuchCredential,
    /// Caller is not authorized to redeem the credential.
    NotAuthorized,
    /// Underlying CXI failure.
    Cxi(CxiError),
}

impl From<CxiError> for DrcError {
    fn from(e: CxiError) -> Self {
        DrcError::Cxi(e)
    }
}

/// The DRC broker: owns a contiguous VNI range distinct from the VNI
/// Service's range.
#[derive(Debug)]
pub struct DrcBroker {
    range: core::ops::Range<u16>,
    next: u16,
    creds: BTreeMap<DrcId, DrcCredential>,
    next_id: u64,
}

impl DrcBroker {
    /// Broker over `[lo, hi)`.
    pub fn new(range: core::ops::Range<u16>) -> Self {
        let next = range.start;
        DrcBroker { range, next, creds: BTreeMap::new(), next_id: 1 }
    }

    /// Issue a fresh credential owned by `owner`.
    pub fn acquire(&mut self, owner: Uid) -> Result<DrcCredential, DrcError> {
        if self.next >= self.range.end {
            return Err(DrcError::Exhausted);
        }
        let vni = Vni(self.next);
        self.next += 1;
        let id = DrcId(self.next_id);
        self.next_id += 1;
        let cred = DrcCredential { id, vni, authorized: vec![owner] };
        self.creds.insert(id, cred.clone());
        Ok(cred)
    }

    /// Allow another uid to redeem an existing credential (cross-user
    /// sharing, the DRC "grant" operation).
    pub fn grant(&mut self, id: DrcId, uid: Uid) -> Result<(), DrcError> {
        let c = self.creds.get_mut(&id).ok_or(DrcError::NoSuchCredential)?;
        if !c.authorized.contains(&uid) {
            c.authorized.push(uid);
        }
        Ok(())
    }

    /// Release a credential. The VNI is retired (this minimal broker does
    /// not recycle).
    pub fn release(&mut self, id: DrcId) -> Result<(), DrcError> {
        self.creds.remove(&id).map(|_| ()).ok_or(DrcError::NoSuchCredential)
    }

    /// Look up a credential.
    pub fn credential(&self, id: DrcId) -> Option<&DrcCredential> {
        self.creds.get(&id)
    }

    /// Redeem a credential on a node: creates a CXI service admitting the
    /// credential's authorized uids on its VNI. Requires privilege (the
    /// node agent performs this), like the Slurm `slurmd` flow of §II-C.
    pub fn redeem(
        &self,
        id: DrcId,
        node_root: &Creds,
        device: &mut CxiDevice,
        caller_uid: Uid,
    ) -> Result<SvcId, DrcError> {
        let cred = self.creds.get(&id).ok_or(DrcError::NoSuchCredential)?;
        if !cred.authorized.contains(&caller_uid) {
            return Err(DrcError::NotAuthorized);
        }
        let desc = CxiServiceDesc {
            members: cred.authorized.iter().map(|&u| SvcMember::Uid(u)).collect(),
            vnis: vec![cred.vni],
            limits: Default::default(),
            label: format!("drc-{}", id.0),
        };
        Ok(device.alloc_svc(node_root, desc)?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::CxiDriver;
    use shs_cassini::{CassiniNic, CassiniParams};
    use shs_des::DetRng;
    use shs_fabric::{NicAddr, TrafficClass};
    use shs_oslinux::{Gid, Host, Pid};

    #[test]
    fn acquire_yields_distinct_vnis_until_exhausted() {
        let mut broker = DrcBroker::new(100..103);
        let a = broker.acquire(Uid(1)).unwrap();
        let b = broker.acquire(Uid(1)).unwrap();
        let c = broker.acquire(Uid(1)).unwrap();
        assert_eq!(
            vec![a.vni, b.vni, c.vni],
            vec![Vni(100), Vni(101), Vni(102)]
        );
        assert_eq!(broker.acquire(Uid(1)).unwrap_err(), DrcError::Exhausted);
    }

    #[test]
    fn redeem_creates_usable_service() {
        let mut host = Host::new("n0");
        let nic = CassiniNic::new(NicAddr(1), CassiniParams::default(), DetRng::new(1));
        let mut dev = CxiDevice::new(CxiDriver::extended(), nic);
        let root = host.credentials(Pid(1)).unwrap();
        let mut broker = DrcBroker::new(100..200);

        let app = host.spawn_detached("app", Uid(1000), Gid(1000));
        let cred = broker.acquire(Uid(1000)).unwrap();
        broker.redeem(cred.id, &root, &mut dev, Uid(1000)).unwrap();
        dev.ep_alloc(&host, app, cred.vni, TrafficClass::Dedicated).unwrap();
    }

    #[test]
    fn redeem_rejects_unauthorized_uid() {
        let host = Host::new("n0");
        let nic = CassiniNic::new(NicAddr(1), CassiniParams::default(), DetRng::new(2));
        let mut dev = CxiDevice::new(CxiDriver::extended(), nic);
        let root = host.credentials(Pid(1)).unwrap();
        let mut broker = DrcBroker::new(100..200);
        let cred = broker.acquire(Uid(1000)).unwrap();
        assert_eq!(
            broker.redeem(cred.id, &root, &mut dev, Uid(2000)).unwrap_err(),
            DrcError::NotAuthorized
        );
        broker.grant(cred.id, Uid(2000)).unwrap();
        broker.redeem(cred.id, &root, &mut dev, Uid(2000)).unwrap();
    }

    #[test]
    fn release_retires_credential() {
        let mut broker = DrcBroker::new(100..200);
        let cred = broker.acquire(Uid(1)).unwrap();
        broker.release(cred.id).unwrap();
        assert_eq!(broker.release(cred.id).unwrap_err(), DrcError::NoSuchCredential);
        assert!(broker.credential(cred.id).is_none());
    }
}
