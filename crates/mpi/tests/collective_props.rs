//! Property tests for the N-rank collectives: for any rank count
//! (2..=16), payload size and dragonfly shape, the payload each rank
//! sends and receives through the full OFI/CXI/fabric stack must match
//! a **sequential oracle** — an independent reimplementation of each
//! collective's schedule that never touches an endpoint — and nothing
//! may be lost.
//!
//! Sizes are bounded at 256 KiB so the worst case (16-rank alltoall
//! converging 8 distinct uplinks onto one trunk direction at once,
//! ~7 × 10.7 µs of queueing) stays inside the fabric's 100 µs trunk
//! queue bound: beyond it the fabric *correctly* congestion-drops —
//! the first run of this suite proved that at 737 KB — and that lossy
//! regime is covered by the scenario suite
//! (`cross-group-allreduce`), not by this lossless oracle.

use proptest::prelude::*;
use shs_des::SimTime;
use shs_fabric::{TopologySpec, TrafficClass, Vni};
use shs_mpi::{CollectiveRig, CommDevices, Communicator, RankIo};

/// N single-rank nodes round-robined over a dragonfly, global VNI —
/// the shared `shs_mpi::rig` world.
fn rig(n: usize, groups: usize, seed: u64) -> CollectiveRig {
    let spec = TopologySpec { groups, switches_per_group: 1, edge_ports: 16 };
    CollectiveRig::new(n, spec, seed)
}

/// Sequential oracle: per-rank (sent_msgs, sent_bytes, recv_msgs,
/// recv_bytes) a collective must produce, derived only from the
/// algorithm definitions — no endpoints, no clocks.
#[derive(Default, Clone, Copy, PartialEq, Eq, Debug)]
struct Io {
    sent_msgs: u64,
    sent_bytes: u64,
    recv_msgs: u64,
    recv_bytes: u64,
}

fn send(io: &mut [Io], src: usize, dst: usize, len: u64) {
    io[src].sent_msgs += 1;
    io[src].sent_bytes += len;
    io[dst].recv_msgs += 1;
    io[dst].recv_bytes += len;
}

fn oracle_barrier(n: usize) -> Vec<Io> {
    let mut io = vec![Io::default(); n];
    let mut dist = 1;
    while dist < n {
        for i in 0..n {
            send(&mut io, i, (i + dist) % n, 0);
        }
        dist *= 2;
    }
    io
}

fn oracle_bcast(n: usize, root: usize, size: u64) -> Vec<Io> {
    let mut io = vec![Io::default(); n];
    let mut mask = 1;
    while mask < n {
        for vr in 0..n {
            if vr < mask && vr + mask < n {
                send(&mut io, (vr + root) % n, (vr + mask + root) % n, size);
            }
        }
        mask <<= 1;
    }
    io
}

fn chunk(size: u64, n: usize, idx: usize) -> u64 {
    let (n, idx) = (n as u64, idx as u64);
    (idx + 1) * size / n - idx * size / n
}

fn oracle_allreduce(n: usize, size: u64) -> Vec<Io> {
    let mut io = vec![Io::default(); n];
    if n == 1 {
        return io;
    }
    if size <= 2048 && n.is_power_of_two() {
        let mut mask = 1;
        while mask < n {
            for i in 0..n {
                send(&mut io, i, i ^ mask, size);
            }
            mask <<= 1;
        }
        return io;
    }
    // Ring reduce-scatter, then ring allgather.
    for s in 0..n - 1 {
        for i in 0..n {
            send(&mut io, i, (i + 1) % n, chunk(size, n, (i + n - s) % n));
        }
    }
    for s in 0..n - 1 {
        for i in 0..n {
            send(&mut io, i, (i + 1) % n, chunk(size, n, (i + 1 + n - s) % n));
        }
    }
    io
}

fn oracle_alltoall(n: usize, size: u64) -> Vec<Io> {
    let mut io = vec![Io::default(); n];
    for s in 1..n {
        for i in 0..n {
            send(&mut io, i, (i + s) % n, size);
        }
    }
    io
}

/// Diff of the communicator's cumulative io against a snapshot.
fn delta(after: &[RankIo], before: &[RankIo]) -> Vec<Io> {
    after
        .iter()
        .zip(before.iter())
        .map(|(a, b)| Io {
            sent_msgs: a.sent_msgs - b.sent_msgs,
            sent_bytes: a.sent_bytes - b.sent_bytes,
            recv_msgs: a.recv_msgs - b.recv_msgs,
            recv_bytes: a.recv_bytes - b.recv_bytes,
        })
        .collect()
}

fn open(r: &mut CollectiveRig) -> (Communicator, CommDevices<'_>) {
    r.open(TrafficClass::Dedicated, SimTime::ZERO)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Every collective's delivered payload matches the sequential
    /// oracle for any rank count, payload size and group count, with
    /// zero loss and a strictly advancing clock.
    #[test]
    fn collectives_match_the_sequential_oracle(
        n in 2usize..=16,
        size in 0u64..=262_144,
        groups in 1usize..=3,
        root in 0usize..16,
        seed in any::<u64>(),
    ) {
        let root = root % n;
        let mut r = rig(n, groups, seed);
        let (mut comm, mut devs) = open(&mut r);

        let snap = comm.io().to_vec();
        comm.barrier(&mut devs);
        prop_assert_eq!(delta(comm.io(), &snap), oracle_barrier(n), "barrier n={}", n);

        let snap = comm.io().to_vec();
        comm.bcast(&mut devs, root, size);
        prop_assert_eq!(
            delta(comm.io(), &snap), oracle_bcast(n, root, size),
            "bcast n={} root={} size={}", n, root, size
        );

        let snap = comm.io().to_vec();
        let before = comm.max_clock();
        comm.allreduce(&mut devs, size);
        prop_assert_eq!(
            delta(comm.io(), &snap), oracle_allreduce(n, size),
            "allreduce n={} size={}", n, size
        );
        prop_assert!(comm.max_clock() > before, "allreduce must consume virtual time");

        let snap = comm.io().to_vec();
        comm.alltoall(&mut devs, size);
        prop_assert_eq!(
            delta(comm.io(), &snap), oracle_alltoall(n, size),
            "alltoall n={} size={}", n, size
        );

        // Conservation: nothing lost, and the fabric's per-VNI payload
        // accounting agrees with the per-rank receive totals.
        prop_assert_eq!(comm.lost(), 0);
        let recv_total: u64 = comm.io().iter().map(|io| io.recv_bytes).sum();
        comm.close(&mut devs);
        prop_assert_eq!(r.fabric.traffic(Vni::GLOBAL).payload_bytes, recv_total);
    }

    /// The ring chunking is exact: chunk lengths are within one byte of
    /// each other and sum exactly to the payload, for any split.
    #[test]
    fn ring_chunks_partition_the_payload(
        n in 1usize..=16,
        size in 0u64..=1_048_576,
    ) {
        let lens: Vec<u64> = (0..n).map(|i| chunk(size, n, i)).collect();
        prop_assert_eq!(lens.iter().sum::<u64>(), size);
        let (min, max) = (lens.iter().min().unwrap(), lens.iter().max().unwrap());
        prop_assert!(max - min <= 1, "chunks must be balanced: {:?}", lens);
    }
}
