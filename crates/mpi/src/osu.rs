//! OSU micro-benchmark clones (§IV-A): `osu_latency`, `osu_bw`, and the
//! collective suite (`osu_allreduce` / `osu_bcast` / `osu_alltoall`).
//!
//! Measurement loops mirror OSU 7.3: latency is a blocking ping-pong
//! averaged over iterations and halved; bandwidth posts a window of
//! non-blocking sends per iteration, waits for all local completions and
//! a zero-byte ack, and reports MB/s (MB = 1e6 bytes). Collective
//! latency is the virtual time from a synchronized start to the instant
//! the **slowest** rank completes, averaged over iterations — the OSU
//! convention of reporting the max across ranks. The paper sweeps
//! packet sizes 1 B .. 1 MB.

use shs_des::SimTime;
use shs_ofi::CompKind;

use crate::comm::{CommDevices, Communicator};
use crate::pair::{PairDevices, RankPair};

/// The size sweep used in Figs. 5-8 (1 B to 1 MiB in powers of two).
pub fn paper_sizes() -> Vec<u64> {
    (0..=20).map(|i| 1u64 << i).collect()
}

/// OSU benchmark parameters.
#[derive(Debug, Clone)]
pub struct OsuParams {
    /// Message sizes to sweep.
    pub sizes: Vec<u64>,
    /// Measured iterations per size.
    pub iterations: u32,
    /// Warmup iterations per size (excluded from timing).
    pub warmup: u32,
    /// In-flight messages per iteration of `osu_bw` (OSU default: 64).
    pub window: u32,
}

impl Default for OsuParams {
    fn default() -> Self {
        OsuParams { sizes: paper_sizes(), iterations: 200, warmup: 20, window: 64 }
    }
}

impl OsuParams {
    /// The paper's full-scale configuration: 10 k iterations for
    /// bandwidth, 20 k for latency (§IV-A). Expensive; the harness
    /// defaults to a scaled-down but shape-identical configuration.
    pub fn paper_scale_bw() -> Self {
        OsuParams { iterations: 10_000, warmup: 100, ..Default::default() }
    }

    /// Paper-scale latency configuration.
    pub fn paper_scale_latency() -> Self {
        OsuParams { iterations: 20_000, warmup: 100, ..Default::default() }
    }
}

/// One (size, value) measurement row.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OsuPoint {
    /// Message size in bytes.
    pub size: u64,
    /// Metric value: µs for latency, MB/s for bandwidth.
    pub value: f64,
}

/// `osu_latency`: average one-way latency (µs) for one message size.
pub fn osu_latency_once(
    pair: &mut RankPair,
    devs: &mut PairDevices<'_>,
    size: u64,
    iterations: u32,
    warmup: u32,
) -> f64 {
    let mut measured_rtt_ns: u128 = 0;
    for it in 0..(warmup + iterations) {
        let tag = 0x10_0000 + it as u64;
        let start = pair.t_a;
        pair.send_a_to_b(devs, tag, size);
        pair.recv_on_b(tag);
        pair.send_b_to_a(devs, tag, size);
        pair.recv_on_a(tag);
        if it >= warmup {
            measured_rtt_ns += (pair.t_a - start).as_nanos() as u128;
        }
    }
    // One-way latency in µs: RTT / 2, averaged.
    measured_rtt_ns as f64 / iterations as f64 / 2.0 / 1000.0
}

/// `osu_bw`: bandwidth (MB/s, MB = 1e6) for one message size.
pub fn osu_bw_once(
    pair: &mut RankPair,
    devs: &mut PairDevices<'_>,
    size: u64,
    iterations: u32,
    warmup: u32,
    window: u32,
) -> f64 {
    let mut start = pair.t_a;
    for it in 0..(warmup + iterations) {
        if it == warmup {
            pair.barrier(devs, 0xB000_0000 + it as u64);
            start = pair.t_a;
        }
        let base_tag = 0x20_0000 + (it as u64) * (window as u64 + 1);
        // Receiver pre-posts the window.
        for w in 0..window {
            pair.t_b = pair.b.trecv(pair.t_b, base_tag + w as u64, 0, w as u64);
        }
        // Sender posts the window of non-blocking sends.
        for w in 0..window {
            let (t, msg) = pair.a.tsend(
                pair.t_a,
                devs.dev_a,
                devs.fabric,
                pair.b.addr,
                base_tag + w as u64,
                size,
                w as u64,
            );
            pair.t_a = t;
            if let Some(msg) = msg {
                pair.b.deliver(devs.dev_b, msg);
            }
        }
        // Sender waits for all local completions (MPI_Waitall on isends).
        for _ in 0..window {
            let (t, c) = pair.a.cq_wait(pair.t_a).expect("send completion");
            debug_assert_eq!(c.kind, CompKind::Send);
            pair.t_a = t;
        }
        // Receiver drains its window (MPI_Waitall on irecvs).
        for _ in 0..window {
            if let Some((t, c)) = pair.b.cq_wait(pair.t_b) {
                debug_assert_eq!(c.kind, CompKind::Recv);
                pair.t_b = t;
            }
        }
        // Receiver acks the window with a zero-byte message.
        let ack_tag = base_tag + window as u64;
        pair.t_a = pair.a.trecv(pair.t_a, ack_tag, 0, 0);
        let (t, msg) =
            pair.b.tsend(pair.t_b, devs.dev_b, devs.fabric, pair.a.addr, ack_tag, 0, 0);
        pair.t_b = t;
        if let Some(msg) = msg {
            pair.a.deliver(devs.dev_a, msg);
        }
        // Drain b's send completion.
        if let Some((t, _)) = pair.b.cq_wait(pair.t_b) {
            pair.t_b = t;
        }
        // a waits for the ack.
        if let Some((t, c)) = pair.a.cq_wait(pair.t_a) {
            debug_assert_eq!(c.kind, CompKind::Recv);
            pair.t_a = t;
        }
    }
    let elapsed_ns = (pair.t_a - start).as_nanos();
    let bytes = size as u128 * window as u128 * iterations as u128;
    bytes as f64 / (elapsed_ns as f64 / 1e9) / 1e6
}

/// `osu_bibw`: bidirectional bandwidth (MB/s) for one message size —
/// both ranks stream a window to each other concurrently, so the figure
/// approaches twice the unidirectional rate on a full-duplex link.
pub fn osu_bibw_once(
    pair: &mut RankPair,
    devs: &mut PairDevices<'_>,
    size: u64,
    iterations: u32,
    warmup: u32,
    window: u32,
) -> f64 {
    let mut start = pair.t_a.max(pair.t_b);
    for it in 0..(warmup + iterations) {
        if it == warmup {
            pair.barrier(devs, 0xD000_0000 + it as u64);
            start = pair.t_a;
        }
        let base = 0x40_0000 + (it as u64) * (2 * window as u64 + 2);
        // Both sides pre-post their receive windows.
        for w in 0..window {
            pair.t_b = pair.b.trecv(pair.t_b, base + w as u64, 0, w as u64);
            pair.t_a = pair.a.trecv(pair.t_a, base + window as u64 + w as u64, 0, w as u64);
        }
        // Both sides post their send windows (full duplex).
        for w in 0..window {
            let (ta, msg_ab) = pair.a.tsend(
                pair.t_a, devs.dev_a, devs.fabric, pair.b.addr, base + w as u64, size, w as u64,
            );
            pair.t_a = ta;
            if let Some(m) = msg_ab {
                pair.b.deliver(devs.dev_b, m);
            }
            let (tb, msg_ba) = pair.b.tsend(
                pair.t_b,
                devs.dev_b,
                devs.fabric,
                pair.a.addr,
                base + window as u64 + w as u64,
                size,
                w as u64,
            );
            pair.t_b = tb;
            if let Some(m) = msg_ba {
                pair.a.deliver(devs.dev_a, m);
            }
        }
        // Drain all completions on both sides (sends + recvs).
        for _ in 0..(2 * window) {
            if let Some((t, _)) = pair.a.cq_wait(pair.t_a) {
                pair.t_a = t;
            }
            if let Some((t, _)) = pair.b.cq_wait(pair.t_b) {
                pair.t_b = t;
            }
        }
        // Synchronize for the next iteration.
        let sync = pair.t_a.max(pair.t_b);
        pair.t_a = sync;
        pair.t_b = sync;
    }
    let elapsed_ns = (pair.t_a.max(pair.t_b) - start).as_nanos();
    let bytes = 2 * size as u128 * window as u128 * iterations as u128;
    bytes as f64 / (elapsed_ns as f64 / 1e9) / 1e6
}

/// Run the full latency sweep.
pub fn osu_latency_sweep(
    pair: &mut RankPair,
    devs: &mut PairDevices<'_>,
    params: &OsuParams,
) -> Vec<OsuPoint> {
    params
        .sizes
        .iter()
        .map(|&size| OsuPoint {
            size,
            value: osu_latency_once(pair, devs, size, params.iterations, params.warmup),
        })
        .collect()
}

/// Run the full bandwidth sweep.
pub fn osu_bw_sweep(
    pair: &mut RankPair,
    devs: &mut PairDevices<'_>,
    params: &OsuParams,
) -> Vec<OsuPoint> {
    params
        .sizes
        .iter()
        .map(|&size| OsuPoint {
            size,
            value: osu_bw_once(pair, devs, size, params.iterations, params.warmup, params.window),
        })
        .collect()
}

/// One timed collective phase: warm up untimed, synchronize the rank
/// cursors, then time `iterations` back-to-back operations and return
/// the mean per-operation latency in µs (max across ranks, as OSU's
/// collective benchmarks report).
fn osu_collective_once(
    comm: &mut Communicator,
    devs: &mut CommDevices<'_>,
    iterations: u32,
    warmup: u32,
    mut op: impl FnMut(&mut Communicator, &mut CommDevices<'_>),
) -> f64 {
    for _ in 0..warmup {
        op(comm, devs);
    }
    comm.sync_clocks();
    let start = comm.max_clock();
    for _ in 0..iterations {
        op(comm, devs);
    }
    (comm.max_clock() - start).as_nanos() as f64 / iterations as f64 / 1000.0
}

/// `osu_allreduce`: mean allreduce latency (µs) for one message size.
pub fn osu_allreduce_once(
    comm: &mut Communicator,
    devs: &mut CommDevices<'_>,
    size: u64,
    iterations: u32,
    warmup: u32,
) -> f64 {
    osu_collective_once(comm, devs, iterations, warmup, |c, d| c.allreduce(d, size))
}

/// `osu_bcast`: mean broadcast-from-rank-0 latency (µs) for one size.
pub fn osu_bcast_once(
    comm: &mut Communicator,
    devs: &mut CommDevices<'_>,
    size: u64,
    iterations: u32,
    warmup: u32,
) -> f64 {
    osu_collective_once(comm, devs, iterations, warmup, |c, d| c.bcast(d, 0, size))
}

/// `osu_alltoall`: mean all-to-all latency (µs) for one per-peer size.
pub fn osu_alltoall_once(
    comm: &mut Communicator,
    devs: &mut CommDevices<'_>,
    size: u64,
    iterations: u32,
    warmup: u32,
) -> f64 {
    osu_collective_once(comm, devs, iterations, warmup, |c, d| c.alltoall(d, size))
}

/// Run the full `osu_allreduce` sweep.
pub fn osu_allreduce_sweep(
    comm: &mut Communicator,
    devs: &mut CommDevices<'_>,
    params: &OsuParams,
) -> Vec<OsuPoint> {
    params
        .sizes
        .iter()
        .map(|&size| OsuPoint {
            size,
            value: osu_allreduce_once(comm, devs, size, params.iterations, params.warmup),
        })
        .collect()
}

/// Run the full `osu_bcast` sweep (root 0).
pub fn osu_bcast_sweep(
    comm: &mut Communicator,
    devs: &mut CommDevices<'_>,
    params: &OsuParams,
) -> Vec<OsuPoint> {
    params
        .sizes
        .iter()
        .map(|&size| OsuPoint {
            size,
            value: osu_bcast_once(comm, devs, size, params.iterations, params.warmup),
        })
        .collect()
}

/// Run the full `osu_alltoall` sweep.
pub fn osu_alltoall_sweep(
    comm: &mut Communicator,
    devs: &mut CommDevices<'_>,
    params: &OsuParams,
) -> Vec<OsuPoint> {
    params
        .sizes
        .iter()
        .map(|&size| OsuPoint {
            size,
            value: osu_alltoall_once(comm, devs, size, params.iterations, params.warmup),
        })
        .collect()
}

/// Reset rank clocks between runs (the OSU binary restarts per run).
///
/// **Invariant (audited for concurrent `cargo test`):** every clock in
/// this crate is value-local — the two cursors live inside the
/// [`RankPair`], an N-rank communicator owns its own cursor vector
/// ([`Communicator::reset_clocks`]), and there are no statics or
/// thread-locals anywhere in `shs-mpi` — so resetting one world can
/// never interleave with another running on a different test thread.
pub fn reset_clocks(pair: &mut RankPair, at: SimTime) {
    pair.t_a = at;
    pair.t_b = at;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pair::tests::rig;
    use shs_fabric::{TrafficClass, Vni};

    fn pair_on(r: &mut crate::pair::tests::Rig) -> (RankPair, PairDevices<'_>) {
        let mut devs =
            PairDevices { dev_a: &mut r.dev_a, dev_b: &mut r.dev_b, fabric: &mut r.fabric };
        let pair = RankPair::open(
            &r.host_a,
            r.pid_a,
            &r.host_b,
            r.pid_b,
            &mut devs,
            Vni::GLOBAL,
            TrafficClass::Dedicated,
            SimTime::ZERO,
        )
        .unwrap();
        (pair, devs)
    }

    #[test]
    fn small_message_latency_is_about_two_microseconds() {
        let mut r = rig(10);
        let (mut pair, mut devs) = pair_on(&mut r);
        let lat = osu_latency_once(&mut pair, &mut devs, 8, 200, 20);
        assert!(lat > 0.8 && lat < 4.0, "8B one-way latency {lat}us");
    }

    #[test]
    fn latency_grows_with_size() {
        let mut r = rig(11);
        let (mut pair, mut devs) = pair_on(&mut r);
        let small = osu_latency_once(&mut pair, &mut devs, 8, 100, 10);
        let large = osu_latency_once(&mut pair, &mut devs, 1 << 20, 20, 2);
        assert!(large > 10.0 * small, "1MB {large}us vs 8B {small}us");
        // 1 MiB one-way ≈ size/goodput + overheads ≈ 43-60 µs.
        assert!(large > 30.0 && large < 90.0, "1MB latency {large}us");
    }

    #[test]
    fn peak_bandwidth_approaches_line_rate() {
        let mut r = rig(12);
        let (mut pair, mut devs) = pair_on(&mut r);
        let bw = osu_bw_once(&mut pair, &mut devs, 1 << 20, 20, 2, 64);
        // Paper Fig. 5 plateau: ~24 GB/s on a 200 Gb/s link.
        assert!(bw > 20_000.0 && bw < 25_000.0, "1MB bandwidth {bw} MB/s");
    }

    #[test]
    fn small_message_bandwidth_is_rate_limited() {
        let mut r = rig(13);
        let (mut pair, mut devs) = pair_on(&mut r);
        let bw = osu_bw_once(&mut pair, &mut devs, 1, 100, 10, 64);
        // ~3 M msg/s × 1 B ≈ single-digit MB/s (Fig. 5 left edge).
        assert!(bw > 0.5 && bw < 10.0, "1B bandwidth {bw} MB/s");
    }

    #[test]
    fn bandwidth_is_monotone_in_size() {
        let mut r = rig(14);
        let (mut pair, mut devs) = pair_on(&mut r);
        let params = OsuParams {
            sizes: vec![1, 64, 4096, 1 << 18],
            iterations: 30,
            warmup: 3,
            window: 32,
        };
        let points = osu_bw_sweep(&mut pair, &mut devs, &params);
        for w in points.windows(2) {
            assert!(
                w[1].value > w[0].value,
                "bw must grow: {} MB/s @{}B then {} MB/s @{}B",
                w[0].value,
                w[0].size,
                w[1].value,
                w[1].size
            );
        }
    }

    #[test]
    fn bidirectional_bandwidth_exceeds_unidirectional() {
        let mut r = rig(15);
        let (mut pair, mut devs) = pair_on(&mut r);
        let uni = osu_bw_once(&mut pair, &mut devs, 1 << 20, 15, 2, 32);
        let bi = osu_bibw_once(&mut pair, &mut devs, 1 << 20, 15, 2, 32);
        // Full-duplex links: bibw approaches 2x; at minimum it clearly
        // exceeds the unidirectional figure.
        assert!(bi > 1.5 * uni, "bibw {bi} vs bw {uni}");
        assert!(bi < 2.2 * uni, "bibw cannot exceed 2x line rate: {bi} vs {uni}");
    }

    #[test]
    fn sweeps_are_deterministic_per_seed() {
        let run = |seed| {
            let mut r = rig(seed);
            let (mut pair, mut devs) = pair_on(&mut r);
            osu_latency_once(&mut pair, &mut devs, 1024, 50, 5)
        };
        assert_eq!(run(99), run(99));
        assert_ne!(run(99), run(100), "different seeds, different jitter");
    }
}
