//! A standalone N-rank world for collective benchmarks and tests: one
//! single-rank node per NIC, round-robin across the switches of a
//! dragonfly, every NIC granted the global VNI — the bare-metal
//! counterpart of a cluster-scheduled job.
//!
//! One definition serves the `shs-mpi` unit tests, the collective
//! oracle property tests, and the `shs-harness` benchmark workloads,
//! so every harness brings up the same stack.

use shs_cassini::{CassiniNic, CassiniParams};
use shs_cxi::{CxiDevice, CxiDriver, CxiServiceDesc};
use shs_des::{DetRng, SimTime};
use shs_fabric::{CostModel, Fabric, NicAddr, RoutingPolicy, SwitchId, TopologySpec, TrafficClass, Vni};
use shs_oslinux::{Gid, Host, Pid, Uid};

use crate::comm::{CommDevices, Communicator, RankSite};

/// The standalone rig. Fields are public so tests can tweak the world
/// (extra processes, private-VNI services) before opening.
pub struct CollectiveRig {
    /// Per-node kernels.
    pub hosts: Vec<Host>,
    /// Per-node benchmark processes.
    pub pids: Vec<Pid>,
    /// Per-node CXI devices.
    pub devices: Vec<CxiDevice>,
    /// The fabric joining them.
    pub fabric: Fabric,
}

impl CollectiveRig {
    /// Build an `n`-rank rig over `spec` (NIC *i* on switch *i* mod
    /// switches), seeding all NIC jitter from `seed`. Every node runs
    /// the extended CXI driver with a default (global-VNI) service.
    pub fn new(n: usize, spec: TopologySpec, seed: u64) -> Self {
        let rng = DetRng::new(seed);
        let mut fabric = Fabric::with_topology(CostModel::default(), spec, RoutingPolicy::Minimal);
        let switches = spec.total_switches();
        let mut hosts = Vec::with_capacity(n);
        let mut pids = Vec::with_capacity(n);
        let mut devices = Vec::with_capacity(n);
        for i in 0..n {
            let mut host = Host::new(format!("n{i}"));
            let nic = NicAddr(i as u32 + 1);
            let mut dev = CxiDevice::new(
                CxiDriver::extended(),
                CassiniNic::new(nic, CassiniParams::default(), rng.derive(&format!("nic/{i}"))),
            );
            fabric.attach_to(nic, SwitchId(i % switches));
            fabric.grant_vni(nic, Vni::GLOBAL).expect("just attached");
            let root = host.credentials(Pid(1)).expect("init");
            dev.alloc_svc(&root, CxiServiceDesc::default_service()).expect("default service");
            pids.push(host.spawn_detached("rank", Uid(1000), Gid(1000)));
            hosts.push(host);
            devices.push(dev);
        }
        CollectiveRig { hosts, pids, devices, fabric }
    }

    /// Single-switch convenience: `n` ranks on one switch with two
    /// spare edge ports.
    pub fn single_switch(n: usize, seed: u64) -> Self {
        CollectiveRig::new(n, TopologySpec::single_switch(n + 2), seed)
    }

    /// Open a communicator over every rank of the rig (global VNI).
    /// Panics if the default service refuses a rank (a rig bug).
    pub fn open(&mut self, tc: TrafficClass, start: SimTime) -> (Communicator, CommDevices<'_>) {
        let CollectiveRig { hosts, pids, devices, fabric } = self;
        let mut devs = CommDevices { devs: devices.iter_mut().collect(), fabric };
        let sites: Vec<RankSite<'_>> = hosts
            .iter()
            .zip(pids.iter())
            .enumerate()
            .map(|(i, (host, &pid))| RankSite { host, pid, node: i })
            .collect();
        let comm = Communicator::open(&sites, &mut devs, Vni::GLOBAL, tc, start)
            .expect("default service admits every rank");
        (comm, devs)
    }
}
