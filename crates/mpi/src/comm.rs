//! An N-rank communicator with virtual-time-correct MPI collectives
//! over the real per-node OFI/CXI device stack.
//!
//! [`Communicator`] generalizes the two-rank [`RankPair`]: every rank
//! owns a tagged OFI endpoint (opened through the full authenticated
//! CXI path) and an explicit virtual-time cursor. Collectives are
//! decomposed into the same tagged point-to-point sends the two-rank
//! world uses, so **every hop** of every collective flows through
//! fabric routing, per-traffic-class trunk scheduling, and per-VNI
//! traffic accounting:
//!
//! * [`Communicator::barrier`] — dissemination: ⌈log₂ n⌉ rounds, each
//!   rank sending a zero-byte message `2^k` ranks ahead;
//! * [`Communicator::bcast`] — binomial tree rooted at any rank,
//!   ⌈log₂ n⌉ rounds, `n − 1` messages total;
//! * [`Communicator::allreduce`] — ring reduce-scatter + allgather
//!   (`2(n−1)` rounds of one chunk per rank), with a recursive-doubling
//!   path for small messages on power-of-two rank counts
//!   ([`Communicator::RECURSIVE_DOUBLING_MAX`]);
//! * [`Communicator::alltoall`] — pairwise exchange over `n − 1` ring
//!   shifts, each rank sending its full per-peer block every shift.
//!
//! ## Virtual-time accounting
//!
//! All clock state is **value-local**: a communicator owns its per-rank
//! cursors, a pair owns its two — there are no statics, thread-locals,
//! or other process-global clocks anywhere in this crate, so `cargo
//! test` may run any number of collective tests concurrently without
//! interleaving timelines (see [`crate::osu::reset_clocks`]). Within
//! one round every rank posts its receive, then posts its send at its
//! own cursor, then blocks for all its completions; blocking follows
//! `fi_cq_sread` semantics, advancing the rank's cursor to the
//! completion instant. A message the fabric drops (VNI enforcement or
//! trunk congestion) never completes at the receiver — RDMA semantics —
//! and is counted in [`Communicator::lost`] instead of hanging the
//! round.
//!
//! [`RankPair`]: crate::pair::RankPair
//!
//! ```
//! use shs_cassini::{CassiniNic, CassiniParams};
//! use shs_cxi::{CxiDevice, CxiDriver, CxiServiceDesc};
//! use shs_des::{DetRng, SimTime};
//! use shs_fabric::{Fabric, NicAddr, TrafficClass, Vni};
//! use shs_mpi::{CommDevices, Communicator, RankSite};
//! use shs_oslinux::{Gid, Host, Pid, Uid};
//!
//! // Four single-rank nodes on one switch.
//! let rng = DetRng::new(7);
//! let mut fabric = Fabric::new(8);
//! let mut hosts = Vec::new();
//! let mut devices = Vec::new();
//! let mut pids = Vec::new();
//! for i in 0..4u32 {
//!     let mut host = Host::new(&format!("n{i}"));
//!     let nic = NicAddr(i + 1);
//!     let mut dev = CxiDevice::new(
//!         CxiDriver::extended(),
//!         CassiniNic::new(nic, CassiniParams::default(), rng.derive(&format!("{i}"))),
//!     );
//!     fabric.attach(nic);
//!     fabric.grant_vni(nic, Vni::GLOBAL).unwrap();
//!     let root = host.credentials(Pid(1)).unwrap();
//!     dev.alloc_svc(&root, CxiServiceDesc::default_service()).unwrap();
//!     pids.push(host.spawn_detached("rank", Uid(1000), Gid(1000)));
//!     hosts.push(host);
//!     devices.push(dev);
//! }
//! let mut devs = CommDevices {
//!     devs: devices.iter_mut().collect(),
//!     fabric: &mut fabric,
//! };
//! let sites: Vec<RankSite> = (0..4)
//!     .map(|r| RankSite { host: &hosts[r], pid: pids[r], node: r })
//!     .collect();
//! let mut comm = Communicator::open(
//!     &sites, &mut devs, Vni::GLOBAL, TrafficClass::Dedicated, SimTime::ZERO,
//! ).unwrap();
//! comm.allreduce(&mut devs, 4096);
//! assert_eq!(comm.lost(), 0, "uncontended fabric delivers everything");
//! // Ring allreduce: every rank sent and received 2(n-1) = 6 chunks.
//! assert!(comm.io().iter().all(|io| io.sent_msgs == 6 && io.recv_msgs == 6));
//! // The OSU collective benchmarks reuse the same communicator.
//! let us = shs_mpi::osu_allreduce_once(&mut comm, &mut devs, 1024, 3, 1);
//! assert!(us > 0.0, "collectives consume virtual time: {us} us");
//! comm.close(&mut devs);
//! ```

use shs_cxi::CxiDevice;
use shs_des::SimTime;
use shs_fabric::{Fabric, TrafficClass, Vni};
use shs_ofi::{open_many, CompKind, OfiEp, OfiError};
use shs_oslinux::{Host, Pid};

/// Mutable borrows of the per-node CXI devices plus the fabric an
/// N-rank communicator runs over. `devs[i]` is node *i*'s device; ranks
/// map onto nodes via [`RankSite::node`], and several ranks may share a
/// node (and therefore a NIC).
pub struct CommDevices<'a> {
    /// One CXI device per node, in node order.
    pub devs: Vec<&'a mut CxiDevice>,
    /// The fabric joining them.
    pub fabric: &'a mut Fabric,
}

impl CommDevices<'_> {
    /// Begin a new measurement run: re-draw per-run NIC jitter on every
    /// node (as between repetitions of the paper's 10-run experiments).
    pub fn new_run(&mut self) {
        for dev in self.devs.iter_mut() {
            dev.nic.new_run();
        }
    }
}

/// Where one rank runs: the node's kernel (for the netns/uid member
/// check at endpoint bring-up), the rank's process, and the index of
/// the node's device in [`CommDevices::devs`]. Ranks sharing a node
/// must reference that node's `Host`.
pub struct RankSite<'a> {
    /// The node kernel the rank's process lives on.
    pub host: &'a Host,
    /// The rank's process (inside a pod this is the pod's workload).
    pub pid: Pid,
    /// Index into [`CommDevices::devs`].
    pub node: usize,
}

/// Per-rank data-path totals, accumulated across collectives (the
/// "delivered payload" surface the oracle tests check).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RankIo {
    /// Messages this rank sent.
    pub sent_msgs: u64,
    /// Payload bytes this rank sent.
    pub sent_bytes: u64,
    /// Messages this rank received (completed receives).
    pub recv_msgs: u64,
    /// Payload bytes this rank received.
    pub recv_bytes: u64,
}

/// One point-to-point operation of a collective round:
/// `(src rank, dst rank, payload bytes)`.
type P2pOp = (usize, usize, u64);

/// An N-rank communicator: one authenticated OFI endpoint and one
/// virtual-time cursor per rank. See the [module docs](self) for the
/// collective algorithms and the virtual-time accounting model.
pub struct Communicator {
    eps: Vec<OfiEp>,
    clocks: Vec<SimTime>,
    node_of: Vec<usize>,
    io: Vec<RankIo>,
    lost: u64,
    op_seq: u64,
    // Scratch arenas reused across rounds so steady-state collectives
    // allocate nothing per hop: the round's op list and the per-rank
    // expected-completion counts. Taken (`mem::take`) around `exchange`
    // because the round borrows `self` mutably.
    ops_buf: Vec<P2pOp>,
    expect_buf: Vec<usize>,
}

impl Communicator {
    /// Largest `allreduce` payload (bytes) routed down the
    /// recursive-doubling path on power-of-two rank counts; larger
    /// messages (or non-power-of-two communicators) use ring
    /// reduce-scatter + allgather.
    pub const RECURSIVE_DOUBLING_MAX: u64 = 2048;

    /// Open one endpoint per rank through the full authenticated path
    /// (MPI_Init plus libfabric domain/endpoint bring-up, the only
    /// place authentication happens). Ranks on the same node are opened
    /// together via [`open_many`]; on any failure every endpoint opened
    /// so far is closed again, so a refused rank never leaks NIC state.
    ///
    /// Panics if `sites` is empty or names a node outside
    /// [`CommDevices::devs`] (wiring bugs).
    pub fn open(
        sites: &[RankSite<'_>],
        devs: &mut CommDevices<'_>,
        vni: Vni,
        tc: TrafficClass,
        start: SimTime,
    ) -> Result<Communicator, OfiError> {
        assert!(!sites.is_empty(), "a communicator needs at least one rank");
        for s in sites {
            assert!(s.node < devs.devs.len(), "rank site names node {} of {}", s.node, devs.devs.len());
        }
        let mut eps: Vec<Option<OfiEp>> = (0..sites.len()).map(|_| None).collect();
        // Nodes in first-appearance order; each node's ranks open as one
        // group on that node's device.
        let mut nodes: Vec<usize> = Vec::new();
        for s in sites {
            if !nodes.contains(&s.node) {
                nodes.push(s.node);
            }
        }
        for &node in &nodes {
            let ranks: Vec<usize> =
                (0..sites.len()).filter(|&r| sites[r].node == node).collect();
            let pids: Vec<Pid> = ranks.iter().map(|&r| sites[r].pid).collect();
            match open_many(sites[ranks[0]].host, devs.devs[node], &pids, vni, tc) {
                Ok(opened) => {
                    for (&r, ep) in ranks.iter().zip(opened) {
                        eps[r] = Some(ep);
                    }
                }
                Err(e) => {
                    for (r, slot) in eps.iter_mut().enumerate() {
                        if let Some(ep) = slot.take() {
                            let _ = ep.close(devs.devs[sites[r].node]);
                        }
                    }
                    return Err(e);
                }
            }
        }
        let n = sites.len();
        Ok(Communicator {
            eps: eps.into_iter().map(|e| e.expect("every rank opened")).collect(),
            clocks: vec![start; n],
            node_of: sites.iter().map(|s| s.node).collect(),
            io: vec![RankIo::default(); n],
            lost: 0,
            op_seq: 0,
            ops_buf: Vec::with_capacity(n),
            expect_buf: Vec::with_capacity(n),
        })
    }

    /// Release every rank's endpoint.
    pub fn close(self, devs: &mut CommDevices<'_>) {
        for (ep, &node) in self.eps.into_iter().zip(self.node_of.iter()) {
            let _ = ep.close(devs.devs[node]);
        }
    }

    /// Number of ranks.
    pub fn size(&self) -> usize {
        self.eps.len()
    }

    /// A rank's virtual-time cursor.
    pub fn clock(&self, rank: usize) -> SimTime {
        self.clocks[rank]
    }

    /// The latest rank cursor (the completion instant of a collective).
    pub fn max_clock(&self) -> SimTime {
        self.clocks.iter().copied().max().expect("non-empty")
    }

    /// Synchronize every cursor to the latest one (the effect of an
    /// external barrier; OSU loops use it between timed phases).
    pub fn sync_clocks(&mut self) {
        let m = self.max_clock();
        self.clocks.iter_mut().for_each(|c| *c = m);
    }

    /// Reset every cursor to `at` (a fresh measurement run). Clock
    /// state is value-local — see the [module docs](self) — so this
    /// never affects any other communicator or pair.
    pub fn reset_clocks(&mut self, at: SimTime) {
        self.clocks.iter_mut().for_each(|c| *c = at);
    }

    /// Per-rank cumulative data-path totals, in rank order.
    pub fn io(&self) -> &[RankIo] {
        &self.io
    }

    /// Messages posted by a collective that never completed at their
    /// receiver (dropped in the fabric: enforcement or congestion).
    pub fn lost(&self) -> u64 {
        self.lost
    }

    /// The node (index into [`CommDevices::devs`]) a rank runs on.
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    /// One round of point-to-point exchanges, executed with MPI
    /// semantics per rank: receives posted first, sends posted at each
    /// sender's cursor, then every rank blocks until all its
    /// completions for this round are visible.
    fn exchange(&mut self, devs: &mut CommDevices<'_>, ops: &[P2pOp]) {
        debug_assert!(ops.len() < (1 << 20), "round too wide for the tag space");
        let tag_base = (self.op_seq + 1) << 20;
        self.op_seq += 1;
        let mut expect = std::mem::take(&mut self.expect_buf);
        expect.clear();
        expect.resize(self.size(), 0);
        // Receivers pre-post.
        for (k, &(_, dst, _)) in ops.iter().enumerate() {
            let tag = tag_base | k as u64;
            self.clocks[dst] = self.eps[dst].trecv(self.clocks[dst], tag, 0, k as u64);
            expect[dst] += 1;
        }
        // Senders post; the composition layer carries the wire message
        // to the destination NIC's matching engine.
        for (k, &(src, dst, len)) in ops.iter().enumerate() {
            let tag = tag_base | k as u64;
            let dst_addr = self.eps[dst].addr;
            let (t, msg) = self.eps[src].tsend(
                self.clocks[src],
                devs.devs[self.node_of[src]],
                devs.fabric,
                dst_addr,
                tag,
                len,
                k as u64,
            );
            self.clocks[src] = t;
            self.io[src].sent_msgs += 1;
            self.io[src].sent_bytes += len;
            expect[src] += 1; // the send completion
            if let Some(msg) = msg {
                self.eps[dst].deliver(devs.devs[self.node_of[dst]], msg);
            }
        }
        // Everyone blocks for this round's completions. Send completions
        // always fire (RDMA drops are silent at the sender); a missing
        // receive completion means the fabric dropped the message.
        for (r, &expected) in expect.iter().enumerate() {
            for done in 0..expected {
                match self.eps[r].cq_wait(self.clocks[r]) {
                    Some((t, c)) => {
                        self.clocks[r] = t;
                        if c.kind == CompKind::Recv {
                            self.io[r].recv_msgs += 1;
                            self.io[r].recv_bytes += c.len;
                        }
                    }
                    None => {
                        self.lost += (expected - done) as u64;
                        break;
                    }
                }
            }
        }
        self.expect_buf = expect;
    }

    /// Dissemination barrier: round *k* has every rank send a zero-byte
    /// message to the rank `2^k` ahead (mod n) and receive from `2^k`
    /// behind; after ⌈log₂ n⌉ rounds every rank has transitively heard
    /// from all others. Cursors are left at each rank's own completion
    /// instant (no artificial synchronization).
    pub fn barrier(&mut self, devs: &mut CommDevices<'_>) {
        let n = self.size();
        let mut ops = std::mem::take(&mut self.ops_buf);
        let mut dist = 1;
        while dist < n {
            ops.clear();
            ops.extend((0..n).map(|i| (i, (i + dist) % n, 0)));
            self.exchange(devs, &ops);
            dist *= 2;
        }
        self.ops_buf = ops;
    }

    /// Binomial-tree broadcast of `size` bytes from `root`: in round
    /// *k* every rank that already holds the payload forwards it to the
    /// rank `2^k` further along (relative to the root), for `n − 1`
    /// messages over ⌈log₂ n⌉ rounds.
    pub fn bcast(&mut self, devs: &mut CommDevices<'_>, root: usize, size: u64) {
        let n = self.size();
        assert!(root < n, "root {root} of {n}");
        let mut ops = std::mem::take(&mut self.ops_buf);
        let mut mask = 1;
        while mask < n {
            ops.clear();
            ops.extend(
                (0..n)
                    .filter(|&vr| vr < mask && vr + mask < n)
                    .map(|vr| ((vr + root) % n, (vr + mask + root) % n, size)),
            );
            self.exchange(devs, &ops);
            mask <<= 1;
        }
        self.ops_buf = ops;
    }

    /// Allreduce of `size` bytes. Small messages on power-of-two rank
    /// counts use recursive doubling (⌈log₂ n⌉ rounds of the full
    /// payload between partners `i ^ 2^k`); everything else uses the
    /// bandwidth-optimal ring — `n − 1` reduce-scatter rounds then
    /// `n − 1` allgather rounds, each rank passing one `≈ size/n` chunk
    /// to its successor, so `2(n−1)/n · size` bytes cross each link.
    pub fn allreduce(&mut self, devs: &mut CommDevices<'_>, size: u64) {
        let n = self.size();
        if n == 1 {
            return;
        }
        let mut ops = std::mem::take(&mut self.ops_buf);
        if size <= Self::RECURSIVE_DOUBLING_MAX && n.is_power_of_two() {
            let mut mask = 1;
            while mask < n {
                ops.clear();
                ops.extend((0..n).map(|i| (i, i ^ mask, size)));
                self.exchange(devs, &ops);
                mask <<= 1;
            }
        } else {
            // The same steps [`ring_allreduce_schedule`] returns —
            // both call [`ring_step_into`] — generated one step at a
            // time into the scratch arena instead of materializing the
            // full `2(n−1)`-step schedule.
            for phase in 0..2usize {
                for s in 0..n - 1 {
                    ops.clear();
                    ring_step_into(n, size, phase, s, &mut ops);
                    self.exchange(devs, &ops);
                }
            }
        }
        self.ops_buf = ops;
    }

    /// All-to-all personalized exchange of `size` bytes per peer:
    /// `n − 1` ring shifts, shift *s* sending each rank's block for the
    /// peer `s` ahead and receiving from the peer `s` behind.
    pub fn alltoall(&mut self, devs: &mut CommDevices<'_>, size: u64) {
        let n = self.size();
        let mut ops = std::mem::take(&mut self.ops_buf);
        for s in 1..n {
            ops.clear();
            ops.extend((0..n).map(|i| (i, (i + s) % n, size)));
            self.exchange(devs, &ops);
        }
        self.ops_buf = ops;
    }
}

/// Blocking MPI-style send between two endpoints: post at the sender's
/// cursor, hand the wire message to the destination NIC's matching
/// engine, then block until the sender's local completion (`MPI_Send`
/// returns at local completion). Returns the sender's new cursor. The
/// shared primitive both [`Communicator`] rounds and the two-rank
/// [`crate::pair::RankPair`] wrap.
#[allow(clippy::too_many_arguments)]
pub(crate) fn blocking_send(
    src_ep: &mut OfiEp,
    src_dev: &mut CxiDevice,
    fabric: &mut Fabric,
    t_src: SimTime,
    dst_ep: &mut OfiEp,
    dst_dev: &mut CxiDevice,
    tag: u64,
    len: u64,
) -> SimTime {
    let (mut t, msg) = src_ep.tsend(t_src, src_dev, fabric, dst_ep.addr, tag, len, tag);
    if let Some(msg) = msg {
        dst_ep.deliver(dst_dev, msg);
    }
    if let Some((tc, c)) = src_ep.cq_wait(t) {
        debug_assert_eq!(c.kind, CompKind::Send);
        t = tc;
    }
    t
}

/// Blocking MPI-style receive: post at the cursor, then block for the
/// matching completion. Returns the new cursor and whether data
/// actually arrived (`false` = the fabric dropped it — in tests, a
/// correctly enforced isolation drop).
pub(crate) fn blocking_recv(ep: &mut OfiEp, t: SimTime, tag: u64) -> (SimTime, bool) {
    let t = ep.trecv(t, tag, 0, tag);
    match ep.cq_wait(t) {
        Some((tc, c)) if c.kind == CompKind::Recv => (tc, true),
        _ => (t, false),
    }
}

/// The ring-allreduce schedule for `n` ranks and `size` bytes: one
/// inner `Vec` of `(src rank, dst rank, chunk bytes)` per step — `n−1`
/// reduce-scatter steps (step *s*: rank *i* passes chunk `(i − s) mod
/// n` to its successor) then `n−1` allgather steps (chunk `(i + 1 − s)
/// mod n`). Chunks split at byte boundaries `⌊i·size/n⌋`, so lengths
/// are balanced within one byte and sum exactly to `size`.
///
/// This is the single schedule [`Communicator::allreduce`] executes;
/// the scenario engine's `TrafficPattern::Allreduce`
/// (`slingshot_k8s::scenario`) mirrors it, and a harness test pins the
/// two byte-for-byte.
///
/// ```
/// let steps = shs_mpi::ring_allreduce_schedule(4, 1000);
/// assert_eq!(steps.len(), 6, "2(n-1) steps");
/// assert!(steps.iter().all(|ops| ops.len() == 4), "every rank sends each step");
/// // Each step's chunks are a permutation of all n chunks, so each
/// // step carries exactly `size` bytes: 2(n-1)·size in total.
/// let total: u64 = steps.iter().flatten().map(|&(_, _, len)| len).sum();
/// assert_eq!(total, 2 * 3 * 1000);
/// ```
pub fn ring_allreduce_schedule(n: usize, size: u64) -> Vec<Vec<(usize, usize, u64)>> {
    let mut steps = Vec::with_capacity(2 * (n.saturating_sub(1)));
    for phase in 0..2usize {
        for s in 0..n - 1 {
            let mut ops = Vec::with_capacity(n);
            ring_step_into(n, size, phase, s, &mut ops);
            steps.push(ops);
        }
    }
    steps
}

/// Append one ring-allreduce step's ops (phase 0 = reduce-scatter,
/// phase 1 = allgather, step `s` within the phase) to `out`. The single
/// generator behind both [`ring_allreduce_schedule`] and the zero-alloc
/// path inside [`Communicator::allreduce`], so the two cannot diverge.
fn ring_step_into(n: usize, size: u64, phase: usize, s: usize, out: &mut Vec<P2pOp>) {
    let chunk = |idx: usize| -> u64 {
        let (n, idx) = (n as u64, (idx % n) as u64);
        (idx + 1) * size / n - idx * size / n
    };
    out.extend((0..n).map(|i| {
        let idx = match phase {
            0 => (i + n - s) % n,
            _ => (i + 1 + n - s) % n,
        };
        (i, (i + 1) % n, chunk(idx))
    }));
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rig::CollectiveRig;
    use shs_fabric::TopologySpec;
    use shs_oslinux::{Gid, Uid};

    fn open_comm(
        rig: &mut CollectiveRig,
        start: SimTime,
    ) -> (Communicator, CommDevices<'_>) {
        rig.open(TrafficClass::Dedicated, start)
    }

    fn single(n: usize, seed: u64) -> CollectiveRig {
        CollectiveRig::single_switch(n, seed)
    }

    #[test]
    fn barrier_makes_every_rank_hear_from_all() {
        let mut rig = single(5, 1);
        let (mut comm, mut devs) = open_comm(&mut rig, SimTime::ZERO);
        // Skew one clock far ahead: after the barrier nobody may still
        // sit at a pre-skew instant.
        comm.clocks[3] = SimTime::from_nanos(2_000_000);
        comm.barrier(&mut devs);
        assert_eq!(comm.lost(), 0);
        for r in 0..5 {
            assert!(
                comm.clock(r) >= SimTime::from_nanos(2_000_000),
                "rank {r} at {:?} never heard (transitively) from rank 3",
                comm.clock(r)
            );
        }
        // Dissemination: 3 rounds of one send + one recv per rank.
        assert!(comm.io().iter().all(|io| io.sent_msgs == 3 && io.recv_msgs == 3));
        comm.close(&mut devs);
    }

    #[test]
    fn bcast_reaches_every_rank_once() {
        let mut rig = single(6, 2);
        let (mut comm, mut devs) = open_comm(&mut rig, SimTime::ZERO);
        comm.bcast(&mut devs, 2, 4096);
        assert_eq!(comm.lost(), 0);
        let total_recv: u64 = comm.io().iter().map(|io| io.recv_msgs).sum();
        assert_eq!(total_recv, 5, "n-1 messages reach the non-roots");
        for (r, io) in comm.io().iter().enumerate() {
            let expected = if r == 2 { 0 } else { 1 };
            assert_eq!(io.recv_msgs, expected, "rank {r}");
            assert_eq!(io.recv_bytes, expected * 4096);
        }
        comm.close(&mut devs);
    }

    #[test]
    fn ring_allreduce_moves_two_size_over_n_per_rank() {
        let n = 6; // not a power of two: always the ring path
        let size = 90_000u64;
        let mut rig = single(n, 3);
        let (mut comm, mut devs) = open_comm(&mut rig, SimTime::ZERO);
        comm.allreduce(&mut devs, size);
        assert_eq!(comm.lost(), 0);
        for io in comm.io() {
            assert_eq!(io.sent_msgs, 2 * (n as u64 - 1));
            assert_eq!(io.recv_msgs, 2 * (n as u64 - 1));
            // Each rank relays every chunk except its own twice-ish:
            // total bytes = 2 * (size - its own chunk share) exactly.
            assert!(io.sent_bytes < 2 * size && io.sent_bytes > size);
            assert_eq!(io.sent_bytes, io.recv_bytes);
        }
        comm.close(&mut devs);
    }

    #[test]
    fn small_power_of_two_allreduce_uses_recursive_doubling() {
        let mut rig = single(8, 4);
        let (mut comm, mut devs) = open_comm(&mut rig, SimTime::ZERO);
        comm.allreduce(&mut devs, 64);
        assert_eq!(comm.lost(), 0);
        for io in comm.io() {
            assert_eq!(io.sent_msgs, 3, "log2(8) full-payload rounds");
            assert_eq!(io.sent_bytes, 3 * 64);
            assert_eq!(io.recv_bytes, 3 * 64);
        }
        comm.close(&mut devs);
    }

    #[test]
    fn alltoall_delivers_full_blocks_between_every_pair() {
        let n = 5;
        let size = 1024u64;
        let mut rig = single(n, 5);
        let (mut comm, mut devs) = open_comm(&mut rig, SimTime::ZERO);
        comm.alltoall(&mut devs, size);
        assert_eq!(comm.lost(), 0);
        for io in comm.io() {
            assert_eq!(io.sent_msgs, n as u64 - 1);
            assert_eq!(io.sent_bytes, (n as u64 - 1) * size);
            assert_eq!(io.recv_bytes, (n as u64 - 1) * size);
        }
        comm.close(&mut devs);
    }

    #[test]
    fn cross_group_collectives_route_over_the_trunk() {
        // 4 ranks round-robined across a 2-group dragonfly: every ring
        // hop alternates groups, so the allreduce crosses the global
        // link and the per-VNI accounting shows multi-switch hops.
        let spec = TopologySpec { groups: 2, switches_per_group: 1, edge_ports: 4 };
        let mut rig = CollectiveRig::new(4, spec, 6);
        let (mut comm, mut devs) = open_comm(&mut rig, SimTime::ZERO);
        comm.allreduce(&mut devs, 1 << 16);
        assert_eq!(comm.lost(), 0);
        comm.close(&mut devs);
        let t = rig.fabric.traffic(Vni::GLOBAL);
        assert!(t.messages > 0);
        assert_eq!(
            t.switch_hops,
            2 * t.messages,
            "every ring hop crosses exactly one trunk (2 switches)"
        );
        let trunk = rig.fabric.trunk_class_totals();
        assert!(trunk[TrafficClass::Dedicated.index()].messages > 0, "trunk carried the ring");
    }

    #[test]
    fn two_ranks_sharing_a_node_open_on_one_device() {
        // 3 ranks over 2 nodes: ranks 0 and 2 share node 0.
        let mut rig = single(2, 7);
        let extra_pid = rig.hosts[0].spawn_detached("rank2", Uid(1000), Gid(1000));
        let mut devs = CommDevices {
            devs: rig.devices.iter_mut().collect(),
            fabric: &mut rig.fabric,
        };
        let sites = [
            RankSite { host: &rig.hosts[0], pid: rig.pids[0], node: 0 },
            RankSite { host: &rig.hosts[1], pid: rig.pids[1], node: 1 },
            RankSite { host: &rig.hosts[0], pid: extra_pid, node: 0 },
        ];
        let mut comm =
            Communicator::open(&sites, &mut devs, Vni::GLOBAL, TrafficClass::Dedicated, SimTime::ZERO)
                .unwrap();
        assert_eq!(comm.node_of(0), comm.node_of(2));
        comm.barrier(&mut devs);
        assert_eq!(comm.lost(), 0);
        comm.close(&mut devs);
    }

    #[test]
    fn open_failure_rolls_back_every_endpoint() {
        // VNI 77 is not realised on any service: open must fail and
        // leave no endpoints allocated on any NIC.
        let mut rig = single(3, 8);
        let mut devs = CommDevices {
            devs: rig.devices.iter_mut().collect(),
            fabric: &mut rig.fabric,
        };
        let sites: Vec<RankSite<'_>> = rig
            .hosts
            .iter()
            .zip(rig.pids.iter())
            .enumerate()
            .map(|(i, (host, &pid))| RankSite { host, pid, node: i })
            .collect();
        let err = Communicator::open(
            &sites,
            &mut devs,
            Vni(77),
            TrafficClass::Dedicated,
            SimTime::ZERO,
        );
        assert!(err.is_err());
        drop(devs);
        for dev in &rig.devices {
            assert_eq!(dev.nic.endpoints_of(shs_cassini::SvcId(1)), 0, "no leaked endpoints");
        }
    }

    #[test]
    fn unrealised_vni_counts_lost_messages_instead_of_hanging() {
        // Grant a private VNI on the NICs' services but *not* on the
        // switch ports: sends complete locally, nothing is delivered.
        let mut rig = single(3, 9);
        for (host, dev) in rig.hosts.iter().zip(rig.devices.iter_mut()) {
            let root = host.credentials(Pid(1)).unwrap();
            dev.alloc_svc(
                &root,
                shs_cxi::CxiServiceDesc {
                    members: vec![shs_cxi::SvcMember::AllUsers],
                    vnis: vec![Vni(77)],
                    limits: Default::default(),
                    label: "private".into(),
                },
            )
            .unwrap();
        }
        let mut devs = CommDevices {
            devs: rig.devices.iter_mut().collect(),
            fabric: &mut rig.fabric,
        };
        let sites: Vec<RankSite<'_>> = rig
            .hosts
            .iter()
            .zip(rig.pids.iter())
            .enumerate()
            .map(|(i, (host, &pid))| RankSite { host, pid, node: i })
            .collect();
        let mut comm =
            Communicator::open(&sites, &mut devs, Vni(77), TrafficClass::Dedicated, SimTime::ZERO)
                .unwrap();
        comm.barrier(&mut devs);
        assert_eq!(comm.lost(), 6, "2 rounds x 3 ranks, all dropped at the switch");
        assert!(comm.io().iter().all(|io| io.recv_msgs == 0));
        comm.close(&mut devs);
    }

    #[test]
    fn concurrent_worlds_never_interleave_clocks() {
        // The audited invariant behind `reset_clocks` (see the module
        // docs): every clock lives inside its communicator, so worlds
        // running on parallel test threads must reproduce the serial
        // result bit for bit — there is no global state to interleave.
        fn sweep() -> SimTime {
            let mut rig = single(6, 77);
            let (mut comm, mut devs) = open_comm(&mut rig, SimTime::ZERO);
            for _ in 0..5 {
                comm.allreduce(&mut devs, 16_384);
                comm.barrier(&mut devs);
            }
            comm.reset_clocks(SimTime::ZERO);
            comm.allreduce(&mut devs, 16_384);
            let t = comm.max_clock();
            comm.close(&mut devs);
            t
        }
        let serial = sweep();
        let threads: Vec<_> = (0..4).map(|_| std::thread::spawn(sweep)).collect();
        for t in threads {
            assert_eq!(t.join().expect("no panic"), serial);
        }
    }

    #[test]
    fn collectives_are_deterministic_per_seed() {
        let run = |seed| {
            let mut rig = single(7, seed);
            let (mut comm, mut devs) = open_comm(&mut rig, SimTime::ZERO);
            comm.allreduce(&mut devs, 32_768);
            comm.alltoall(&mut devs, 500);
            let t = comm.max_clock();
            comm.close(&mut devs);
            t
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43), "seed drives NIC jitter");
    }
}
