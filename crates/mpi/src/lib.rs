//! # shs-mpi — MPI-lite and the OSU micro-benchmark clones
//!
//! The measurement layer of the paper's §IV-A: a two-rank MPI-style
//! world over the libfabric layer ([`pair::RankPair`]) with blocking
//! send/receive and barrier, plus faithful reimplementations of
//! `osu_latency` (blocking ping-pong, half round trip) and `osu_bw`
//! (windowed non-blocking sends + ack) from the OSU Micro-Benchmarks 7.3
//! suite ([`osu`]).
//!
//! Ranks carry explicit virtual-time cursors, so a full 1 B..1 MB sweep
//! is an ordinary function call — no event loop on the hot path.

pub mod osu;
pub mod pair;

pub use osu::{
    osu_bibw_once, osu_bw_once, osu_bw_sweep, osu_latency_once, osu_latency_sweep, paper_sizes, reset_clocks,
    OsuParams, OsuPoint,
};
pub use pair::{PairDevices, RankPair};
