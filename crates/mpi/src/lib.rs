//! # shs-mpi — MPI-lite and the OSU micro-benchmark clones
//!
//! The measurement layer of the paper's §IV-A: an N-rank MPI-style
//! world over the libfabric layer — the [`comm::Communicator`] with
//! virtual-time-correct collectives (dissemination barrier, binomial
//! broadcast, ring/recursive-doubling allreduce, pairwise all-to-all),
//! plus the two-rank [`pair::RankPair`] it generalizes — and faithful
//! reimplementations of the OSU Micro-Benchmarks 7.3 suite ([`osu`]):
//! `osu_latency` (blocking ping-pong, half round trip), `osu_bw`
//! (windowed non-blocking sends + ack), and the collective latency
//! benchmarks `osu_allreduce` / `osu_bcast` / `osu_alltoall`.
//!
//! Ranks carry explicit virtual-time cursors, so a full 1 B..1 MB sweep
//! is an ordinary function call — no event loop on the hot path. See
//! `COLLECTIVES.md` at the repository root for the algorithm choices,
//! the virtual-time accounting model, and expected dragonfly scaling.

pub mod comm;
pub mod osu;
pub mod pair;
pub mod rig;

pub use comm::{ring_allreduce_schedule, CommDevices, Communicator, RankIo, RankSite};
pub use rig::CollectiveRig;
pub use osu::{
    osu_allreduce_once, osu_allreduce_sweep, osu_alltoall_once, osu_alltoall_sweep,
    osu_bcast_once, osu_bcast_sweep, osu_bibw_once, osu_bw_once, osu_bw_sweep, osu_latency_once,
    osu_latency_sweep, paper_sizes, reset_clocks, OsuParams, OsuPoint,
};
pub use pair::{PairDevices, RankPair};
