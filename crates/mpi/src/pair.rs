//! A two-rank MPI-lite world over the libfabric layer — now a thin
//! wrapper over the shared point-to-point primitives of
//! [`crate::comm`].
//!
//! Each rank carries its own virtual-time cursor; blocking MPI semantics
//! (send returns at local completion, receive returns at delivery) are
//! expressed by advancing the cursors to completion instants. The paper's
//! point-to-point OSU benchmarks only ever involve two ranks; N-rank
//! collectives live in [`crate::comm::Communicator`].

use shs_cxi::CxiDevice;
use shs_des::SimTime;
use shs_fabric::{Fabric, TrafficClass, Vni};
use shs_ofi::{OfiEp, OfiError};
use shs_oslinux::{Host, Pid};

use crate::comm::{blocking_recv, blocking_send, CommDevices};

/// Mutable borrows of the node devices + fabric a pair communicates over
/// — the two-rank view of [`CommDevices`].
pub struct PairDevices<'a> {
    /// Rank 0's CXI device.
    pub dev_a: &'a mut CxiDevice,
    /// Rank 1's CXI device.
    pub dev_b: &'a mut CxiDevice,
    /// The fabric between them.
    pub fabric: &'a mut Fabric,
}

impl PairDevices<'_> {
    /// Begin a new measurement run (re-draw per-run NIC jitter, as
    /// between repetitions of the paper's 10-run experiments).
    pub fn new_run(&mut self) {
        self.dev_a.nic.new_run();
        self.dev_b.nic.new_run();
    }

    /// Reborrow as the N-rank [`CommDevices`] view (node 0 = rank 0's
    /// device, node 1 = rank 1's), for running collectives over the
    /// same two nodes.
    pub fn as_comm(&mut self) -> CommDevices<'_> {
        CommDevices {
            devs: vec![&mut *self.dev_a, &mut *self.dev_b],
            fabric: &mut *self.fabric,
        }
    }
}

/// Two connected ranks.
pub struct RankPair {
    /// Rank 0 endpoint.
    pub a: OfiEp,
    /// Rank 1 endpoint.
    pub b: OfiEp,
    /// Rank 0 clock.
    pub t_a: SimTime,
    /// Rank 1 clock.
    pub t_b: SimTime,
}

impl RankPair {
    /// Open both endpoints through the full authenticated path (MPI_Init
    /// plus libfabric domain/endpoint bring-up). `pid_*` are the
    /// benchmark processes — inside pods these live in the pod's network
    /// namespace and authenticate via the netns CXI service member.
    #[allow(clippy::too_many_arguments)]
    pub fn open(
        host_a: &Host,
        pid_a: Pid,
        host_b: &Host,
        pid_b: Pid,
        devs: &mut PairDevices<'_>,
        vni: Vni,
        tc: TrafficClass,
        start: SimTime,
    ) -> Result<RankPair, OfiError> {
        let a = OfiEp::open(host_a, devs.dev_a, pid_a, vni, tc)?;
        let b = OfiEp::open(host_b, devs.dev_b, pid_b, vni, tc)?;
        Ok(RankPair { a, b, t_a: start, t_b: start })
    }

    /// Blocking send from rank 0 to rank 1 (returns at rank-0 local
    /// completion; delivers into rank 1's matching engine). Thin
    /// wrapper over the shared [`crate::comm`] primitive.
    pub fn send_a_to_b(&mut self, devs: &mut PairDevices<'_>, tag: u64, len: u64) {
        self.t_a = blocking_send(
            &mut self.a, devs.dev_a, devs.fabric, self.t_a, &mut self.b, devs.dev_b, tag, len,
        );
    }

    /// Blocking send from rank 1 to rank 0.
    pub fn send_b_to_a(&mut self, devs: &mut PairDevices<'_>, tag: u64, len: u64) {
        self.t_b = blocking_send(
            &mut self.b, devs.dev_b, devs.fabric, self.t_b, &mut self.a, devs.dev_a, tag, len,
        );
    }

    /// Blocking receive on rank 1 (posts, then waits for the matching
    /// completion). Returns `false` if nothing ever arrives — which in
    /// tests indicates a (correctly) enforced isolation drop.
    pub fn recv_on_b(&mut self, tag: u64) -> bool {
        let (t, ok) = blocking_recv(&mut self.b, self.t_b, tag);
        self.t_b = t;
        ok
    }

    /// Blocking receive on rank 0.
    pub fn recv_on_a(&mut self, tag: u64) -> bool {
        let (t, ok) = blocking_recv(&mut self.a, self.t_a, tag);
        self.t_a = t;
        ok
    }

    /// Zero-byte barrier (ping + pong), synchronizing the two clocks.
    pub fn barrier(&mut self, devs: &mut PairDevices<'_>, tag: u64) {
        self.send_a_to_b(devs, tag, 0);
        self.recv_on_b(tag);
        self.send_b_to_a(devs, tag + 1, 0);
        self.recv_on_a(tag + 1);
        let sync = self.t_a.max(self.t_b);
        self.t_a = sync;
        self.t_b = sync;
    }

    /// Release both endpoints.
    pub fn close(self, devs: &mut PairDevices<'_>) {
        let _ = self.a.close(devs.dev_a);
        let _ = self.b.close(devs.dev_b);
    }
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;
    use shs_cassini::{CassiniNic, CassiniParams};
    use shs_cxi::{CxiDriver, CxiServiceDesc};
    use shs_des::DetRng;
    use shs_fabric::NicAddr;
    use shs_oslinux::{Gid, Uid};

    pub(crate) struct Rig {
        pub host_a: Host,
        pub host_b: Host,
        pub pid_a: Pid,
        pub pid_b: Pid,
        pub dev_a: CxiDevice,
        pub dev_b: CxiDevice,
        pub fabric: Fabric,
    }

    pub(crate) fn rig(seed: u64) -> Rig {
        let mut host_a = Host::new("na");
        let mut host_b = Host::new("nb");
        let rng = DetRng::new(seed);
        let mut fabric = Fabric::new(4);
        let mut dev_a = CxiDevice::new(
            CxiDriver::extended(),
            CassiniNic::new(NicAddr(1), CassiniParams::default(), rng.derive("a")),
        );
        let mut dev_b = CxiDevice::new(
            CxiDriver::extended(),
            CassiniNic::new(NicAddr(2), CassiniParams::default(), rng.derive("b")),
        );
        fabric.attach(NicAddr(1));
        fabric.attach(NicAddr(2));
        fabric.grant_vni(NicAddr(1), Vni::GLOBAL).unwrap();
        fabric.grant_vni(NicAddr(2), Vni::GLOBAL).unwrap();
        let ra = host_a.credentials(Pid(1)).unwrap();
        let rb = host_b.credentials(Pid(1)).unwrap();
        dev_a.alloc_svc(&ra, CxiServiceDesc::default_service()).unwrap();
        dev_b.alloc_svc(&rb, CxiServiceDesc::default_service()).unwrap();
        let pid_a = host_a.spawn_detached("rank0", Uid(1000), Gid(1000));
        let pid_b = host_b.spawn_detached("rank1", Uid(1000), Gid(1000));
        Rig { host_a, host_b, pid_a, pid_b, dev_a, dev_b, fabric }
    }

    #[test]
    fn ping_pong_advances_both_clocks() {
        let mut r = rig(1);
        let mut devs =
            PairDevices { dev_a: &mut r.dev_a, dev_b: &mut r.dev_b, fabric: &mut r.fabric };
        let mut pair = RankPair::open(
            &r.host_a,
            r.pid_a,
            &r.host_b,
            r.pid_b,
            &mut devs,
            Vni::GLOBAL,
            TrafficClass::Dedicated,
            SimTime::ZERO,
        )
        .unwrap();
        pair.send_a_to_b(&mut devs, 1, 8);
        assert!(pair.recv_on_b(1));
        pair.send_b_to_a(&mut devs, 2, 8);
        assert!(pair.recv_on_a(2));
        assert!(pair.t_a > SimTime::ZERO);
        assert!(pair.t_b > SimTime::ZERO);
        pair.close(&mut devs);
    }

    #[test]
    fn barrier_synchronizes_clocks() {
        let mut r = rig(2);
        let mut devs =
            PairDevices { dev_a: &mut r.dev_a, dev_b: &mut r.dev_b, fabric: &mut r.fabric };
        let mut pair = RankPair::open(
            &r.host_a,
            r.pid_a,
            &r.host_b,
            r.pid_b,
            &mut devs,
            Vni::GLOBAL,
            TrafficClass::Dedicated,
            SimTime::ZERO,
        )
        .unwrap();
        // Skew the clocks.
        pair.t_a = SimTime::from_nanos(5_000_000);
        pair.barrier(&mut devs, 100);
        assert_eq!(pair.t_a, pair.t_b);
        pair.close(&mut devs);
    }

    #[test]
    fn isolation_drop_surfaces_as_failed_recv() {
        let mut r = rig(3);
        // Grant a private VNI only on the NICs' services, not the switch:
        let ra = r.host_a.credentials(Pid(1)).unwrap();
        let rb = r.host_b.credentials(Pid(1)).unwrap();
        let desc = |label: &str| CxiServiceDesc {
            members: vec![shs_cxi::SvcMember::AllUsers],
            vnis: vec![Vni(77)],
            limits: Default::default(),
            label: label.into(),
        };
        r.dev_a.alloc_svc(&ra, desc("a")).unwrap();
        r.dev_b.alloc_svc(&rb, desc("b")).unwrap();
        let mut devs =
            PairDevices { dev_a: &mut r.dev_a, dev_b: &mut r.dev_b, fabric: &mut r.fabric };
        let mut pair = RankPair::open(
            &r.host_a,
            r.pid_a,
            &r.host_b,
            r.pid_b,
            &mut devs,
            Vni(77),
            TrafficClass::Dedicated,
            SimTime::ZERO,
        )
        .unwrap();
        pair.send_a_to_b(&mut devs, 1, 8); // switch drops it silently
        assert!(!pair.recv_on_b(1), "no data may cross a non-realised VNI");
        pair.close(&mut devs);
    }
}
