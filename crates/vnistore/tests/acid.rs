//! ACID property tests: under randomized workloads and crash points, the
//! recovered store must equal the state produced by exactly the
//! committed-transaction prefix — never a partial transaction, never a
//! lost committed one. This is the guarantee the paper leans on SQLite
//! for (§III-C2).

use proptest::prelude::*;
use shs_des::DetRng;
use shs_vnistore::{SimDisk, Store, StoreConfig};
use std::collections::BTreeMap;

/// A scripted operation for the model-based test.
#[derive(Debug, Clone)]
enum ScriptOp {
    Put { table: u8, key: u8, value: u16 },
    Delete { table: u8, key: u8 },
    CommitTxn,
    AbortTxn,
    Snapshot,
}

fn op_strategy() -> impl Strategy<Value = ScriptOp> {
    prop_oneof![
        4 => (0u8..3, 0u8..16, any::<u16>())
            .prop_map(|(table, key, value)| ScriptOp::Put { table, key, value }),
        2 => (0u8..3, 0u8..16).prop_map(|(table, key)| ScriptOp::Delete { table, key }),
        3 => Just(ScriptOp::CommitTxn),
        1 => Just(ScriptOp::AbortTxn),
        1 => Just(ScriptOp::Snapshot),
    ]
}

fn table_name(t: u8) -> &'static str {
    match t {
        0 => "vnis",
        1 => "vni_users",
        _ => "audit_log",
    }
}

type Model = BTreeMap<(String, Vec<u8>), Vec<u8>>;

/// Run the script against both the real store and an in-memory model.
/// Returns (store, model-after-each-commit) where the model only
/// reflects *committed* transactions.
fn run_script(ops: &[ScriptOp], snapshot_every: Option<u64>) -> (Store, Model) {
    let mut store = Store::new(StoreConfig { snapshot_every, ..Default::default() });
    let mut committed: Model = BTreeMap::new();
    let mut staged: Vec<ScriptOp> = Vec::new();

    for op in ops {
        match op {
            ScriptOp::Put { .. } | ScriptOp::Delete { .. } => staged.push(op.clone()),
            ScriptOp::AbortTxn => staged.clear(),
            ScriptOp::Snapshot => store.snapshot(),
            ScriptOp::CommitTxn => {
                let mut txn = store.begin();
                for s in &staged {
                    match s {
                        ScriptOp::Put { table, key, value } => {
                            txn.put(table_name(*table), &[*key], &value.to_le_bytes());
                        }
                        ScriptOp::Delete { table, key } => {
                            txn.delete(table_name(*table), &[*key]);
                        }
                        _ => unreachable!(),
                    }
                }
                txn.commit();
                for s in staged.drain(..) {
                    match s {
                        ScriptOp::Put { table, key, value } => {
                            committed.insert(
                                (table_name(table).to_string(), vec![key]),
                                value.to_le_bytes().to_vec(),
                            );
                        }
                        ScriptOp::Delete { table, key } => {
                            committed.remove(&(table_name(table).to_string(), vec![key]));
                        }
                        _ => unreachable!(),
                    }
                }
            }
        }
    }
    (store, committed)
}

fn dump(store: &Store) -> Model {
    let mut out = BTreeMap::new();
    for t in ["vnis", "vni_users", "audit_log"] {
        for (k, v) in store.scan(t) {
            out.insert((t.to_string(), k.to_vec()), v.to_vec());
        }
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Clean shutdown + recovery reproduces exactly the committed state.
    #[test]
    fn recovery_equals_committed_state(
        ops in prop::collection::vec(op_strategy(), 1..80),
        snap in prop_oneof![Just(None), Just(Some(3u64)), Just(Some(10u64))],
    ) {
        let (store, committed) = run_script(&ops, snap);
        let recovered = Store::recover(store.shutdown(), StoreConfig::default());
        prop_assert_eq!(dump(&recovered), committed);
    }

    /// Crashing at an arbitrary point never exposes partial transactions
    /// and never loses a committed one (commit fsyncs before returning).
    #[test]
    fn crash_recovery_is_atomic_and_durable(
        ops in prop::collection::vec(op_strategy(), 1..80),
        crash_seed in any::<u64>(),
        snap in prop_oneof![Just(None), Just(Some(4u64))],
    ) {
        let (store, committed) = run_script(&ops, snap);
        let mut rng = DetRng::new(crash_seed);
        let disk = store.crash(&mut rng);
        let recovered = Store::recover(disk, StoreConfig::default());
        // All commits fsynced => crash must preserve them all.
        prop_assert_eq!(dump(&recovered), committed);
    }

    /// Recovery is idempotent: recovering twice gives the same state, and
    /// the recovered store accepts new transactions.
    #[test]
    fn recovery_is_idempotent_and_writable(
        ops in prop::collection::vec(op_strategy(), 1..40),
    ) {
        let (store, _) = run_script(&ops, Some(5));
        let disk = store.shutdown();
        let r1 = Store::recover(disk.clone(), StoreConfig::default());
        let r2 = Store::recover(disk, StoreConfig::default());
        prop_assert_eq!(dump(&r1), dump(&r2));
        let mut r = r1;
        let mut txn = r.begin();
        txn.put("vnis", b"new", b"row");
        txn.commit();
        prop_assert_eq!(r.get("vnis", b"new"), Some(b"row".as_slice()));
    }

    /// Group-commit batches are all-or-nothing: truncating the device at
    /// ANY byte offset (a torn write mid-group-commit) recovers exactly
    /// the state at some batch boundary — never part of a batch, never a
    /// lost flushed one.
    #[test]
    fn torn_group_commit_recovers_whole_batches_only(
        ops in prop::collection::vec(op_strategy(), 1..80),
        batch_every in 2u64..8,
        cut_seed in any::<u64>(),
    ) {
        let mut store = Store::new(StoreConfig { snapshot_every: None, ..Default::default() });
        store.group_begin();
        let mut committed: Model = BTreeMap::new();
        let mut staged: Vec<ScriptOp> = Vec::new();
        // Every state the device can legally recover to: the empty store
        // plus the committed model at each flush/snapshot boundary.
        let mut boundaries: Vec<Model> = vec![BTreeMap::new()];
        let mut commits = 0u64;
        for op in &ops {
            match op {
                ScriptOp::Put { .. } | ScriptOp::Delete { .. } => staged.push(op.clone()),
                ScriptOp::AbortTxn => staged.clear(),
                ScriptOp::Snapshot => {
                    store.snapshot(); // flushes the open batch first
                    boundaries.push(committed.clone());
                }
                ScriptOp::CommitTxn => {
                    let mut txn = store.begin();
                    for s in &staged {
                        match s {
                            ScriptOp::Put { table, key, value } => {
                                txn.put(table_name(*table), &[*key], &value.to_le_bytes());
                            }
                            ScriptOp::Delete { table, key } => {
                                txn.delete(table_name(*table), &[*key]);
                            }
                            _ => unreachable!(),
                        }
                    }
                    txn.commit();
                    for s in staged.drain(..) {
                        match s {
                            ScriptOp::Put { table, key, value } => {
                                committed.insert(
                                    (table_name(table).to_string(), vec![key]),
                                    value.to_le_bytes().to_vec(),
                                );
                            }
                            ScriptOp::Delete { table, key } => {
                                committed.remove(&(table_name(table).to_string(), vec![key]));
                            }
                            _ => unreachable!(),
                        }
                    }
                    commits += 1;
                    if commits.is_multiple_of(batch_every) {
                        store.group_flush();
                        boundaries.push(committed.clone());
                    }
                }
            }
        }
        store.group_end();
        boundaries.push(committed.clone());
        let full = store.shutdown();
        let cut = (cut_seed % (full.len() as u64 + 1)) as usize;
        let mut torn = SimDisk::new();
        torn.append(&full.contents()[..cut]);
        torn.fsync();
        let recovered = Store::recover(torn, StoreConfig::default());
        let state = dump(&recovered);
        prop_assert!(
            boundaries.contains(&state),
            "cut {} of {} bytes recovered a non-boundary state", cut, full.len()
        );
    }

    /// A torn tail (arbitrary garbage appended then crash) never corrupts
    /// the committed prefix.
    #[test]
    fn garbage_tail_is_ignored(
        ops in prop::collection::vec(op_strategy(), 1..40),
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let (store, committed) = run_script(&ops, None);
        let mut disk: SimDisk = store.shutdown();
        disk.append(&garbage); // unsynced garbage tail
        let mut rng = DetRng::new(9);
        let disk = disk.crash(&mut rng);
        let recovered = Store::recover(disk, StoreConfig::default());
        prop_assert_eq!(dump(&recovered), committed);
    }
}
