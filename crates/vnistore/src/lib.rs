//! # shs-vnistore — embedded ACID store (the paper's SQLite substitute)
//!
//! The VNI Database of §III-C2 "stores all allocated VNIs and their
//! associated users" plus an audit log, and relies on SQLite's ACID
//! transactions to make multi-step operations (check-then-allocate)
//! atomic under the multi-threaded VNI Controller. SQLite itself is out
//! of scope for this reproduction's dependency budget, so this crate
//! provides the same guarantees from scratch:
//!
//! * named tables of byte keys/values ([`Store`]),
//! * single-writer **serializable transactions** with read-your-writes
//!   ([`Txn`]),
//! * durability via a CRC-framed **write-ahead log** ([`wal`]) on a
//!   simulated device with explicit fsync/crash semantics ([`SimDisk`]),
//! * snapshot checkpoints and **crash recovery** that tolerate torn
//!   tails.
//!
//! The crash-consistency property (no committed VNI allocation is ever
//! lost, no partial transaction is ever visible) is property-tested in
//! `tests/acid.rs`.

pub mod codec;
pub mod disk;
pub mod store;
pub mod wal;

pub use disk::SimDisk;
pub use store::{OverlayScan, Store, StoreConfig, StoreStats, Txn};
