//! The transactional store: serializable transactions over named tables,
//! durable through a WAL on the simulated device, with snapshot
//! checkpoints and crash recovery.
//!
//! Concurrency model: single-writer serializable — every transaction
//! holds `&mut Store` for its lifetime, so transactions are totally
//! ordered. This matches the paper's use of SQLite: "We utilize the ACID
//! properties of SQLite ... by implementing all relevant database
//! operations as atomic SQL transactions" (§III-C2).
//!
//! # Example
//!
//! Commit a transaction, shut down cleanly, and recover the same state
//! from the device image:
//!
//! ```
//! use shs_vnistore::{Store, StoreConfig};
//!
//! let mut store = Store::new(StoreConfig::default());
//! let mut txn = store.begin();
//! txn.put("vnis", b"k1", b"row-1");
//! txn.put("vnis", b"k2", b"row-2");
//! txn.commit();
//! assert_eq!(store.get("vnis", b"k1"), Some(&b"row-1"[..]));
//!
//! // A dropped (uncommitted) transaction leaves no trace.
//! let mut txn = store.begin();
//! txn.delete("vnis", b"k1");
//! drop(txn);
//! assert!(store.get("vnis", b"k1").is_some());
//!
//! let disk = store.shutdown();
//! let recovered = Store::recover(disk, StoreConfig::default());
//! assert_eq!(recovered.row_count("vnis"), 2);
//! ```

use std::collections::BTreeMap;

use shs_des::DetRng;

use crate::codec::{push_bytes, read_bytes};
use crate::disk::SimDisk;
use crate::wal::{decode_all, decode_batch, encode_into, push_batch_txn, RecordKind};

type Table = BTreeMap<Vec<u8>, Vec<u8>>;

/// A staged operation.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    Put { table: String, key: Vec<u8>, value: Vec<u8> },
    Delete { table: String, key: Vec<u8> },
}

fn encode_ops_into(ops: &[Op], out: &mut Vec<u8>) {
    for op in ops {
        match op {
            Op::Put { table, key, value } => {
                out.push(1u8);
                push_bytes(out, table.as_bytes());
                push_bytes(out, key);
                push_bytes(out, value);
            }
            Op::Delete { table, key } => {
                out.push(2u8);
                push_bytes(out, table.as_bytes());
                push_bytes(out, key);
            }
        }
    }
}

fn decode_ops(payload: &[u8]) -> Vec<Op> {
    let mut ops = Vec::new();
    let mut off = 0usize;
    while off < payload.len() {
        let tag = payload[off];
        off += 1;
        let Some(table) = read_bytes(payload, &mut off) else { break };
        let Some(key) = read_bytes(payload, &mut off) else { break };
        let table = String::from_utf8_lossy(&table).into_owned();
        match tag {
            1 => {
                let Some(value) = read_bytes(payload, &mut off) else { break };
                ops.push(Op::Put { table, key, value });
            }
            2 => ops.push(Op::Delete { table, key }),
            _ => break,
        }
    }
    ops
}

/// Store configuration.
#[derive(Debug, Clone, Copy)]
pub struct StoreConfig {
    /// Write a snapshot record after this many commits (None = never).
    pub snapshot_every: Option<u64>,
    /// Additionally require the WAL to have grown by at least this
    /// multiple of the previous snapshot's size before snapshotting
    /// again (0 = no requirement, the legacy fixed cadence).
    ///
    /// A fixed cadence re-encodes every row each `snapshot_every`
    /// commits, which is O(table size) work on a schedule that does not
    /// scale with it — total snapshot cost grows quadratically with
    /// history. A factor of 1 makes each snapshot "pay for itself" in
    /// WAL growth, bounding amortized snapshot work per commit by a
    /// constant while recovery still replays at most one
    /// snapshot-equivalent of tail records.
    pub snapshot_wal_factor: u64,
}

impl Default for StoreConfig {
    fn default() -> Self {
        StoreConfig { snapshot_every: Some(256), snapshot_wal_factor: 0 }
    }
}

/// Store statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StoreStats {
    /// Committed transactions.
    pub commits: u64,
    /// Snapshot records written.
    pub snapshots: u64,
    /// Group-commit batch records written (each covers ≥ 1 commit with
    /// a single fsync).
    pub batches: u64,
    /// Bytes appended to the WAL over the store's lifetime.
    pub wal_bytes: u64,
    /// fsync barriers issued.
    pub fsyncs: u64,
}

/// The transactional store.
#[derive(Debug)]
pub struct Store {
    disk: SimDisk,
    tables: BTreeMap<String, Table>,
    next_lsn: u64,
    config: StoreConfig,
    commits_since_snapshot: u64,
    /// WAL bytes appended since the last snapshot (commit frames only).
    wal_since_snapshot: u64,
    /// Size of the last snapshot frame (0 before the first snapshot).
    last_snapshot_bytes: u64,
    stats: StoreStats,
    // Scratch arenas for the commit hot path: the encoded-ops payload,
    // the framed WAL record, and the previous transaction's (emptied)
    // staging Vec. Reused so a steady-state single-put commit performs
    // no buffer allocations beyond the row's own owned bytes.
    payload_buf: Vec<u8>,
    frame_buf: Vec<u8>,
    ops_pool: Vec<Op>,
    /// Group-commit state: while `Some`, committed transactions apply to
    /// the tables immediately (reads see them) but their WAL framing and
    /// fsync are deferred into this accumulating batch; `group_flush`
    /// writes the whole batch as ONE `Batch` record with one fsync. A
    /// crash before the flush loses the entire open batch — never part
    /// of it (the batch frame's CRC is all-or-nothing).
    group: Option<GroupState>,
}

/// Accumulator for an open group-commit batch.
#[derive(Debug, Default)]
struct GroupState {
    /// `u32 len | ops` per deferred transaction, in commit order.
    buf: Vec<u8>,
    /// LSN of the first transaction in the open batch.
    first_lsn: u64,
    /// Transactions in the open batch.
    count: u64,
}

impl Store {
    /// Create an empty store on a fresh device.
    pub fn new(config: StoreConfig) -> Self {
        Store {
            disk: SimDisk::new(),
            tables: BTreeMap::new(),
            next_lsn: 1,
            config,
            commits_since_snapshot: 0,
            wal_since_snapshot: 0,
            last_snapshot_bytes: 0,
            stats: StoreStats::default(),
            payload_buf: Vec::new(),
            frame_buf: Vec::new(),
            ops_pool: Vec::new(),
            group: None,
        }
    }

    /// Recover a store from a (possibly crash-truncated) device image.
    /// Replays the latest snapshot, then all later committed transactions
    /// (group-commit batches count one LSN per contained transaction).
    pub fn recover(disk: SimDisk, config: StoreConfig) -> Self {
        let (records, _) = decode_all(disk.contents());
        let mut tables: BTreeMap<String, Table> = BTreeMap::new();
        let mut next_lsn = 1;
        // Start from the last snapshot, if any.
        let snap_pos = records.iter().rposition(|r| r.kind == RecordKind::Snapshot);
        let start = match snap_pos {
            Some(i) => {
                tables.clear();
                for op in decode_ops(&records[i].payload) {
                    apply_op(&mut tables, op);
                }
                next_lsn = records[i].lsn + 1;
                i + 1
            }
            None => 0,
        };
        for rec in &records[start..] {
            match rec.kind {
                RecordKind::Commit => {
                    for op in decode_ops(&rec.payload) {
                        apply_op(&mut tables, op);
                    }
                    next_lsn = rec.lsn + 1;
                }
                RecordKind::Batch => {
                    let txns = decode_batch(&rec.payload);
                    for txn in &txns {
                        for op in decode_ops(txn) {
                            apply_op(&mut tables, op);
                        }
                    }
                    next_lsn = rec.lsn + txns.len() as u64;
                }
                RecordKind::Snapshot => {}
            }
        }
        Store {
            disk,
            tables,
            next_lsn,
            config,
            commits_since_snapshot: 0,
            wal_since_snapshot: 0,
            last_snapshot_bytes: 0,
            stats: StoreStats::default(),
            payload_buf: Vec::new(),
            frame_buf: Vec::new(),
            ops_pool: Vec::new(),
            group: None,
        }
    }

    /// Begin a serializable transaction. The staging `Vec` is recycled
    /// from the last committed transaction, so back-to-back commits do
    /// not reallocate it.
    pub fn begin(&mut self) -> Txn<'_> {
        let ops = std::mem::take(&mut self.ops_pool);
        Txn { store: self, ops }
    }

    /// Committed read.
    pub fn get(&self, table: &str, key: &[u8]) -> Option<&[u8]> {
        self.tables.get(table)?.get(key).map(|v| v.as_slice())
    }

    /// Iterate a table's committed rows in key order.
    pub fn scan<'a>(&'a self, table: &str) -> impl Iterator<Item = (&'a [u8], &'a [u8])> + 'a {
        self.tables
            .get(table)
            .into_iter()
            .flat_map(|t| t.iter().map(|(k, v)| (k.as_slice(), v.as_slice())))
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: &str) -> usize {
        self.tables.get(table).map_or(0, |t| t.len())
    }

    /// Force a snapshot checkpoint now, **truncating** the log: the
    /// snapshot frame becomes the entire device image (the
    /// checkpoint + rename a real store performs), so the device — and
    /// recovery — stay O(live rows) instead of O(history). Rows are
    /// encoded straight from the committed tables into the record
    /// payload — no intermediate per-row `Op` clones. Any open
    /// group-commit batch is flushed first so the checkpoint never
    /// captures state the log has not made durable.
    pub fn snapshot(&mut self) {
        self.flush_group_buffer();
        self.payload_buf.clear();
        for (tname, table) in &self.tables {
            for (k, v) in table {
                // Byte-identical to `encode_ops_into` of a `Put` per row.
                self.payload_buf.push(1u8);
                push_bytes(&mut self.payload_buf, tname.as_bytes());
                push_bytes(&mut self.payload_buf, k);
                push_bytes(&mut self.payload_buf, v);
            }
        }
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.frame_buf.clear();
        encode_into(RecordKind::Snapshot, lsn, &self.payload_buf, &mut self.frame_buf);
        self.disk.replace(&self.frame_buf);
        self.stats.wal_bytes += self.frame_buf.len() as u64;
        self.stats.snapshots += 1;
        self.stats.fsyncs += 1;
        self.commits_since_snapshot = 0;
        self.wal_since_snapshot = 0;
        self.last_snapshot_bytes = self.frame_buf.len() as u64;
    }

    /// Enter group-commit mode: subsequent commits apply immediately but
    /// defer WAL framing + fsync until [`Store::group_flush`]. Idempotent
    /// — an already-open batch keeps accumulating.
    pub fn group_begin(&mut self) {
        if self.group.is_none() {
            self.group = Some(GroupState::default());
        }
    }

    /// Make every deferred commit durable as ONE `Batch` WAL record with
    /// ONE fsync, then run the (deferred) snapshot-cadence check. A
    /// no-op when the batch is empty. The store stays in group mode.
    pub fn group_flush(&mut self) {
        self.flush_group_buffer();
        self.maybe_snapshot();
    }

    /// Flush any open batch and leave group-commit mode.
    pub fn group_end(&mut self) {
        self.group_flush();
        self.group = None;
    }

    /// Commits sitting in the open batch, not yet durable.
    pub fn group_pending(&self) -> u64 {
        self.group.as_ref().map_or(0, |g| g.count)
    }

    fn flush_group_buffer(&mut self) {
        let Some(g) = self.group.as_mut() else { return };
        if g.count == 0 {
            return;
        }
        let first_lsn = g.first_lsn;
        let buf = std::mem::take(&mut g.buf);
        g.count = 0;
        self.frame_buf.clear();
        encode_into(RecordKind::Batch, first_lsn, &buf, &mut self.frame_buf);
        self.disk.append(&self.frame_buf);
        self.disk.fsync();
        self.stats.wal_bytes += self.frame_buf.len() as u64;
        self.wal_since_snapshot += self.frame_buf.len() as u64;
        self.stats.batches += 1;
        self.stats.fsyncs += 1;
        // Hand the emptied buffer back for the next batch.
        if let Some(g) = self.group.as_mut() {
            g.buf = buf;
            g.buf.clear();
        }
    }

    /// Simulate a crash, returning the surviving device image. An open
    /// group-commit batch is deliberately **not** flushed: its commits
    /// were never durable, and recovery rolls back the whole batch.
    pub fn crash(self, rng: &mut DetRng) -> SimDisk {
        self.disk.crash(rng)
    }

    /// Cleanly stop, returning the device (everything synced, any open
    /// group-commit batch flushed).
    pub fn shutdown(mut self) -> SimDisk {
        self.flush_group_buffer();
        self.disk.fsync();
        self.disk
    }

    /// Bytes currently on the device — what a recovery scan must read.
    /// Truncating snapshots keep this O(live rows) rather than
    /// O(history).
    pub fn device_len(&self) -> usize {
        self.disk.len()
    }

    /// Statistics for this store instance (not carried across recovery).
    pub fn stats(&self) -> StoreStats {
        StoreStats { fsyncs: self.disk.fsyncs, ..self.stats }
    }

    fn commit_ops(&mut self, mut ops: Vec<Op>) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.payload_buf.clear();
        encode_ops_into(&ops, &mut self.payload_buf);
        if let Some(g) = self.group.as_mut() {
            // Group mode: stage the framing in the open batch; durability
            // (and the snapshot-cadence check, which must not checkpoint
            // state ahead of the log) waits for `group_flush`.
            if g.count == 0 {
                g.first_lsn = lsn;
            }
            push_batch_txn(&mut g.buf, &self.payload_buf);
            g.count += 1;
        } else {
            // WAL first, then fsync, then apply: crash before the fsync
            // loses the whole transaction, never half of it.
            self.frame_buf.clear();
            encode_into(RecordKind::Commit, lsn, &self.payload_buf, &mut self.frame_buf);
            self.disk.append(&self.frame_buf);
            self.disk.fsync();
            self.stats.wal_bytes += self.frame_buf.len() as u64;
            self.wal_since_snapshot += self.frame_buf.len() as u64;
        }
        // Apply by move: the ops' owned strings and byte vectors become
        // the table rows instead of being cloned, and the emptied
        // staging Vec goes back to the pool for the next `begin`.
        for op in ops.drain(..) {
            apply_op(&mut self.tables, op);
        }
        self.ops_pool = ops;
        self.stats.commits += 1;
        self.commits_since_snapshot += 1;
        if self.group.is_none() {
            self.maybe_snapshot();
        }
        lsn
    }

    /// Snapshot if the commit cadence is due and the WAL has grown
    /// enough since the last one (see [`StoreConfig`]).
    fn maybe_snapshot(&mut self) {
        if let Some(every) = self.config.snapshot_every {
            let wal_due = self.wal_since_snapshot
                >= self.config.snapshot_wal_factor.saturating_mul(self.last_snapshot_bytes);
            if self.commits_since_snapshot >= every && wal_due {
                self.snapshot();
            }
        }
    }
}

fn apply_op(tables: &mut BTreeMap<String, Table>, op: Op) {
    match op {
        Op::Put { table, key, value } => {
            // `get_mut` first: the common case (table exists) must not
            // clone the table name just to probe the `entry` API.
            match tables.get_mut(&table) {
                Some(t) => {
                    t.insert(key, value);
                }
                None => {
                    tables.entry(table).or_default().insert(key, value);
                }
            }
        }
        Op::Delete { table, key } => {
            if let Some(t) = tables.get_mut(&table) {
                t.remove(&key);
            }
        }
    }
}

/// A serializable read-write transaction. Dropping without
/// [`Txn::commit`] rolls back (nothing was applied or logged).
#[derive(Debug)]
pub struct Txn<'s> {
    store: &'s mut Store,
    ops: Vec<Op>,
}

impl Txn<'_> {
    /// Read-your-writes get, cloning the value. Prefer [`Txn::get_ref`]
    /// on hot paths — allocation probes do not need an owned copy.
    pub fn get(&self, table: &str, key: &[u8]) -> Option<Vec<u8>> {
        self.get_ref(table, key).map(<[u8]>::to_vec)
    }

    /// Read-your-writes get without cloning: the returned slice borrows
    /// either a staged write or the committed table.
    pub fn get_ref(&self, table: &str, key: &[u8]) -> Option<&[u8]> {
        for op in self.ops.iter().rev() {
            match op {
                Op::Put { table: t, key: k, value } if t == table && k == key => {
                    return Some(value)
                }
                Op::Delete { table: t, key: k } if t == table && k == key => return None,
                _ => {}
            }
        }
        self.store.get(table, key)
    }

    /// Stage a put.
    pub fn put(&mut self, table: &str, key: &[u8], value: &[u8]) {
        self.ops.push(Op::Put {
            table: table.to_string(),
            key: key.to_vec(),
            value: value.to_vec(),
        });
    }

    /// Stage a delete.
    pub fn delete(&mut self, table: &str, key: &[u8]) {
        self.ops.push(Op::Delete { table: table.to_string(), key: key.to_vec() });
    }

    /// Scan a table with staged writes overlaid, in key order. Borrows:
    /// the committed table is merge-iterated against a sparse overlay of
    /// this transaction's staged operations, so no row is cloned and no
    /// full-table copy is materialized.
    pub fn scan(&self, table: &str) -> OverlayScan<'_> {
        let mut overlay: BTreeMap<&[u8], Option<&[u8]>> = BTreeMap::new();
        for op in &self.ops {
            match op {
                Op::Put { table: t, key, value } if t == table => {
                    overlay.insert(key, Some(value));
                }
                Op::Delete { table: t, key } if t == table => {
                    overlay.insert(key, None);
                }
                _ => {}
            }
        }
        OverlayScan {
            base: self
                .store
                .tables
                .get(table)
                .map(|t| t.iter())
                .into_iter()
                .flatten()
                .peekable(),
            overlay: overlay.into_iter().peekable(),
        }
    }

    /// Number of staged operations.
    pub fn pending_ops(&self) -> usize {
        self.ops.len()
    }

    /// Durably commit: WAL append + fsync + apply. Returns the LSN.
    pub fn commit(self) -> u64 {
        let Txn { store, ops } = self;
        store.commit_ops(ops)
    }
}

type BaseIter<'a> = std::iter::Peekable<
    std::iter::Flatten<
        std::option::IntoIter<std::collections::btree_map::Iter<'a, Vec<u8>, Vec<u8>>>,
    >,
>;
type OverlayIter<'a> =
    std::iter::Peekable<std::collections::btree_map::IntoIter<&'a [u8], Option<&'a [u8]>>>;

/// Borrowing key-ordered merge of a committed table with a transaction's
/// staged puts/deletes, returned by [`Txn::scan`]. A staged put shadows
/// the committed row at the same key; a staged delete suppresses it.
#[derive(Debug)]
pub struct OverlayScan<'a> {
    base: BaseIter<'a>,
    overlay: OverlayIter<'a>,
}

impl<'a> Iterator for OverlayScan<'a> {
    type Item = (&'a [u8], &'a [u8]);

    fn next(&mut self) -> Option<Self::Item> {
        use std::cmp::Ordering;
        loop {
            let order = match (self.base.peek(), self.overlay.peek()) {
                (Some((bk, _)), Some((ok, _))) => bk.as_slice().cmp(ok),
                (Some(_), None) => Ordering::Less,
                (None, Some(_)) => Ordering::Greater,
                (None, None) => return None,
            };
            if order == Ordering::Equal {
                self.base.next(); // shadowed by the staged op at this key
            }
            if order == Ordering::Less {
                let (k, v) = self.base.next().expect("peeked");
                return Some((k.as_slice(), v.as_slice()));
            }
            // Staged op wins the merge point; deletes yield nothing.
            let (k, v) = self.overlay.next().expect("peeked");
            if let Some(v) = v {
                return Some((k, v));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store() -> Store {
        Store::new(StoreConfig { snapshot_every: None, ..Default::default() })
    }

    #[test]
    fn committed_writes_are_visible() {
        let mut s = store();
        let mut t = s.begin();
        t.put("vnis", b"100", b"allocated");
        t.commit();
        assert_eq!(s.get("vnis", b"100"), Some(b"allocated".as_slice()));
        assert_eq!(s.row_count("vnis"), 1);
    }

    #[test]
    fn dropped_txn_rolls_back() {
        let mut s = store();
        {
            let mut t = s.begin();
            t.put("vnis", b"100", b"allocated");
            // dropped without commit
        }
        assert_eq!(s.get("vnis", b"100"), None);
        assert_eq!(s.stats().commits, 0);
    }

    #[test]
    fn read_your_writes_inside_txn() {
        let mut s = store();
        let mut t = s.begin();
        t.put("t", b"k", b"v1");
        assert_eq!(t.get("t", b"k"), Some(b"v1".to_vec()));
        t.put("t", b"k", b"v2");
        assert_eq!(t.get("t", b"k"), Some(b"v2".to_vec()));
        t.delete("t", b"k");
        assert_eq!(t.get("t", b"k"), None);
        t.commit();
        assert_eq!(s.get("t", b"k"), None);
    }

    #[test]
    fn txn_scan_overlays_staged_writes() {
        let mut s = store();
        let mut t = s.begin();
        t.put("t", b"a", b"1");
        t.put("t", b"b", b"2");
        t.commit();
        let mut t = s.begin();
        t.delete("t", b"a");
        t.put("t", b"c", b"3");
        let rows: Vec<(&[u8], &[u8])> = t.scan("t").collect();
        assert_eq!(rows, vec![(&b"b"[..], &b"2"[..]), (&b"c"[..], &b"3"[..])]);
    }

    #[test]
    fn txn_scan_merge_covers_all_interleavings() {
        // Staged keys before, between, equal-to and after committed keys,
        // plus a staged delete of a missing key (must yield nothing).
        let mut s = store();
        let mut t = s.begin();
        t.put("t", b"b", b"base-b");
        t.put("t", b"d", b"base-d");
        t.commit();
        let mut t = s.begin();
        t.put("t", b"a", b"new-a"); // before all committed keys
        t.put("t", b"b", b"shadow-b"); // shadows a committed row
        t.put("t", b"c", b"new-c"); // between committed keys
        t.delete("t", b"d"); // deletes a committed row
        t.delete("t", b"x"); // delete of a key that never existed
        t.put("t", b"z", b"new-z"); // after all committed keys
        let rows: Vec<(&[u8], &[u8])> = t.scan("t").collect();
        assert_eq!(
            rows,
            vec![
                (&b"a"[..], &b"new-a"[..]),
                (&b"b"[..], &b"shadow-b"[..]),
                (&b"c"[..], &b"new-c"[..]),
                (&b"z"[..], &b"new-z"[..]),
            ]
        );
    }

    #[test]
    fn txn_get_ref_borrows_without_cloning() {
        let mut s = store();
        let mut t = s.begin();
        t.put("t", b"k", b"committed");
        t.commit();
        let mut t = s.begin();
        assert_eq!(t.get_ref("t", b"k"), Some(&b"committed"[..]));
        t.put("t", b"k", b"staged");
        assert_eq!(t.get_ref("t", b"k"), Some(&b"staged"[..]));
        t.delete("t", b"k");
        assert_eq!(t.get_ref("t", b"k"), None);
        assert_eq!(t.get_ref("t", b"missing"), None);
    }

    #[test]
    fn recovery_replays_committed_transactions() {
        let mut s = store();
        for i in 0..10u32 {
            let mut t = s.begin();
            t.put("vnis", &i.to_le_bytes(), b"row");
            t.commit();
        }
        let disk = s.shutdown();
        let r = Store::recover(disk, StoreConfig::default());
        assert_eq!(r.row_count("vnis"), 10);
    }

    #[test]
    fn crash_loses_at_most_the_uncommitted_tail() {
        // Commit fsyncs, so *every* committed txn must survive any crash.
        let mut s = store();
        for i in 0..20u32 {
            let mut t = s.begin();
            t.put("vnis", &i.to_le_bytes(), b"row");
            t.commit();
        }
        for seed in 0..16 {
            let mut rng = DetRng::new(seed);
            // no un-fsynced tail exists; crash must preserve all 20 rows
            let mut s2 = Store::recover(
                Store::recover(s.shutdown_clone(), StoreConfig::default())
                    .crash(&mut rng),
                StoreConfig::default(),
            );
            assert_eq!(s2.row_count("vnis"), 20, "seed {seed}");
            // And the recovered store keeps working.
            let mut t = s2.begin();
            t.put("vnis", b"extra", b"row");
            t.commit();
            assert_eq!(s2.row_count("vnis"), 21);
        }
    }

    #[test]
    fn snapshot_then_recover_matches_state() {
        let mut s = Store::new(StoreConfig { snapshot_every: Some(4), ..Default::default() });
        for i in 0..10u32 {
            let mut t = s.begin();
            t.put("a", &i.to_le_bytes(), &(i * 2).to_le_bytes());
            t.commit();
        }
        // Delete a few, snapshot happened automatically along the way.
        let mut t = s.begin();
        t.delete("a", &3u32.to_le_bytes());
        t.commit();
        assert!(s.stats().snapshots >= 2);
        let expected: Vec<(Vec<u8>, Vec<u8>)> =
            s.scan("a").map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        let r = Store::recover(s.shutdown(), StoreConfig::default());
        let got: Vec<(Vec<u8>, Vec<u8>)> =
            r.scan("a").map(|(k, v)| (k.to_vec(), v.to_vec())).collect();
        assert_eq!(got, expected);
    }

    #[test]
    fn wal_factor_defers_snapshots_until_wal_grows() {
        // With factor 1, a snapshot is only due once the WAL has grown by
        // at least the previous snapshot's size — tiny commits against a
        // large table must not trigger O(table) re-encoding every N
        // commits.
        let mut s = Store::new(StoreConfig {
            snapshot_every: Some(4),
            snapshot_wal_factor: 1,
        });
        // Build a large table; the first snapshot (nothing snapshotted
        // yet, last_snapshot_bytes == 0) fires on the fixed cadence.
        for i in 0..64u32 {
            let mut t = s.begin();
            t.put("big", &i.to_le_bytes(), &[0u8; 128]);
            t.commit();
        }
        let after_fill = s.stats().snapshots;
        assert!(after_fill >= 1);
        // Tiny commits: far more than `snapshot_every` of them, but their
        // combined WAL bytes stay below one snapshot's size — no new
        // snapshot may fire.
        for _ in 0..8 {
            let mut t = s.begin();
            t.put("small", b"k", b"v");
            t.commit();
        }
        assert_eq!(s.stats().snapshots, after_fill);
        // Keep committing until the WAL growth catches up: eventually a
        // snapshot fires again, and recovery still sees everything.
        for i in 0..4096u32 {
            let mut t = s.begin();
            t.put("small", &i.to_le_bytes(), &[7u8; 64]);
            t.commit();
            if s.stats().snapshots > after_fill {
                break;
            }
        }
        assert!(s.stats().snapshots > after_fill);
        let r = Store::recover(s.shutdown(), StoreConfig::default());
        assert_eq!(r.row_count("big"), 64);
    }

    #[test]
    fn lsns_are_monotone() {
        let mut s = store();
        let mut prev = 0;
        for _ in 0..5 {
            let mut t = s.begin();
            t.put("t", b"k", b"v");
            let lsn = t.commit();
            assert!(lsn > prev);
            prev = lsn;
        }
    }

    #[test]
    fn group_commit_batches_many_txns_into_one_fsync() {
        let mut s = store();
        s.group_begin();
        for i in 0..16u32 {
            let mut t = s.begin();
            t.put("vnis", &i.to_le_bytes(), b"row");
            t.commit();
        }
        assert_eq!(s.group_pending(), 16);
        assert_eq!(s.stats().fsyncs, 0, "durability is deferred");
        assert_eq!(s.get("vnis", &3u32.to_le_bytes()), Some(b"row".as_slice()));
        s.group_flush();
        assert_eq!(s.group_pending(), 0);
        let st = s.stats();
        assert_eq!(st.commits, 16);
        assert_eq!(st.batches, 1);
        assert_eq!(st.fsyncs, 1, "16 commits, one barrier");
        let r = Store::recover(s.shutdown(), StoreConfig::default());
        assert_eq!(r.row_count("vnis"), 16);
    }

    #[test]
    fn group_batch_recovery_advances_lsn_by_txn_count() {
        let mut s = store();
        s.group_begin();
        for i in 0..5u32 {
            let mut t = s.begin();
            t.put("t", &i.to_le_bytes(), b"v");
            t.commit();
        }
        s.group_end();
        let mut r = Store::recover(s.shutdown(), StoreConfig::default());
        let mut t = r.begin();
        t.put("t", b"next", b"v");
        let lsn = t.commit();
        assert_eq!(lsn, 6, "5 batched txns occupied LSNs 1..=5");
    }

    #[test]
    fn crash_before_group_flush_rolls_back_the_whole_batch() {
        let mut s = store();
        let mut t = s.begin();
        t.put("t", b"durable", b"v");
        t.commit();
        s.group_begin();
        s.group_flush(); // empty flush is a no-op
        assert_eq!(s.stats().batches, 0);
        for i in 0..8u32 {
            let mut t = s.begin();
            t.put("t", &i.to_le_bytes(), b"volatile");
            t.commit();
        }
        assert_eq!(s.row_count("t"), 9, "batched writes are visible before the crash");
        for seed in 0..16 {
            let mut rng = DetRng::new(seed);
            let r = Store::recover(s.disk_clone().crash(&mut rng), StoreConfig::default());
            assert_eq!(
                r.row_count("t"),
                1,
                "seed {seed}: only the pre-batch row survives, never part of the batch"
            );
        }
    }

    #[test]
    fn torn_batch_frame_is_rolled_back_whole() {
        // Flush a batch, then tear the device inside the batch frame at
        // every possible offset: recovery must see either all 8 txns or
        // none — never a prefix of the batch.
        let mut s = store();
        s.group_begin();
        for i in 0..8u32 {
            let mut t = s.begin();
            t.put("t", &i.to_le_bytes(), b"v");
            t.commit();
        }
        s.group_flush();
        let full = s.shutdown();
        for cut in 0..full.len() {
            let mut torn = SimDisk::new();
            torn.append(&full.contents()[..cut]);
            torn.fsync();
            let r = Store::recover(torn, StoreConfig::default());
            let n = r.row_count("t");
            assert!(n == 0 || n == 8, "cut {cut}: partial batch visible ({n} rows)");
        }
    }

    #[test]
    fn group_flush_then_crash_keeps_every_batched_txn() {
        let mut s = store();
        s.group_begin();
        for i in 0..8u32 {
            let mut t = s.begin();
            t.put("t", &i.to_le_bytes(), b"v");
            t.commit();
        }
        s.group_flush();
        for seed in 0..8 {
            let mut rng = DetRng::new(seed);
            let r = Store::recover(s.disk_clone().crash(&mut rng), StoreConfig::default());
            assert_eq!(r.row_count("t"), 8, "seed {seed}");
        }
    }

    #[test]
    fn truncating_snapshot_bounds_the_device_by_live_rows() {
        let mut s = Store::new(StoreConfig { snapshot_every: Some(64), snapshot_wal_factor: 0 });
        // Churn one hot key far past the snapshot cadence: history grows,
        // live state stays one row, so the device must stop growing.
        let mut peak_after_snapshot = 0usize;
        for i in 0..4096u32 {
            let mut t = s.begin();
            t.put("hot", b"k", &i.to_le_bytes());
            t.commit();
            if s.stats().snapshots == 1 && peak_after_snapshot == 0 {
                peak_after_snapshot = s.device_len();
            }
        }
        assert!(s.stats().snapshots > 10);
        // Between snapshots at most `snapshot_every` commit frames pile
        // up, so the device never exceeds snapshot + cadence worth of
        // frames — independent of the 4096-commit history.
        assert!(
            s.device_len() < peak_after_snapshot + 64 * 64,
            "device_len {} should be bounded by live rows + cadence, not history",
            s.device_len()
        );
        let r = Store::recover(s.shutdown(), StoreConfig::default());
        assert_eq!(r.row_count("hot"), 1);
        assert_eq!(r.get("hot", b"k"), Some(4095u32.to_le_bytes().as_slice()));
    }

    #[test]
    fn snapshot_during_open_batch_flushes_it_first() {
        let mut s = Store::new(StoreConfig { snapshot_every: None, ..Default::default() });
        s.group_begin();
        let mut t = s.begin();
        t.put("t", b"k", b"v");
        t.commit();
        s.snapshot();
        assert_eq!(s.group_pending(), 0, "snapshot drained the batch");
        assert_eq!(s.stats().batches, 1);
        // The batch flush preceded the truncation, so the image is just
        // the snapshot and recovery still sees the row.
        let r = Store::recover(s.shutdown(), StoreConfig::default());
        assert_eq!(r.get("t", b"k"), Some(b"v".as_slice()));
    }

    #[test]
    fn empty_commit_is_durable_noop() {
        let mut s = store();
        let t = s.begin();
        assert_eq!(t.pending_ops(), 0);
        t.commit();
        let r = Store::recover(s.shutdown(), StoreConfig::default());
        assert_eq!(r.row_count("t"), 0);
    }

    impl Store {
        /// Test helper: clone the synced device image without consuming.
        fn shutdown_clone(&self) -> SimDisk {
            let mut d = self.disk.clone();
            d.fsync();
            d
        }

        /// Test helper: clone the device as-is (unsynced tail and any
        /// open group batch stay volatile).
        fn disk_clone(&self) -> SimDisk {
            self.disk.clone()
        }
    }
}
