//! A simulated append-only durable device with explicit `fsync` and
//! crash semantics.
//!
//! The write path buffers appends in volatile memory until `fsync`; a
//! crash keeps everything synced plus an arbitrary *prefix* of the
//! unsynced tail (modelling torn writes). This is the failure model the
//! WAL layer must survive, and the one the ACID property tests inject.

use shs_des::DetRng;

/// The simulated device.
#[derive(Debug, Clone, Default)]
pub struct SimDisk {
    buf: Vec<u8>,
    synced_len: usize,
    /// Number of fsync barriers issued (cost accounting).
    pub fsyncs: u64,
}

impl SimDisk {
    /// Fresh, empty device.
    pub fn new() -> Self {
        SimDisk::default()
    }

    /// Append bytes (volatile until [`SimDisk::fsync`]).
    pub fn append(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Durability barrier: everything appended so far survives crashes.
    pub fn fsync(&mut self) {
        self.synced_len = self.buf.len();
        self.fsyncs += 1;
    }

    /// Full logical content (what a reader sees while the system is up).
    pub fn contents(&self) -> &[u8] {
        &self.buf
    }

    /// Length of the durable prefix.
    pub fn synced_len(&self) -> usize {
        self.synced_len
    }

    /// Total length including unsynced tail.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the device holds no bytes at all.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Atomically replace the device contents with a new image, durable
    /// immediately. Models the checkpoint-to-a-new-file + fsync + rename
    /// sequence a truncating snapshot performs, collapsed into the one
    /// crash-atomic step the rename provides: a crash either sees the
    /// old image or the complete new one, never a mix.
    pub fn replace(&mut self, bytes: &[u8]) {
        self.buf.clear();
        self.buf.extend_from_slice(bytes);
        self.synced_len = self.buf.len();
        self.fsyncs += 1;
    }

    /// Simulate a crash: the synced prefix survives intact; of the
    /// unsynced tail, a random prefix (possibly zero bytes, possibly all)
    /// survives — a torn final write.
    pub fn crash(mut self, rng: &mut DetRng) -> SimDisk {
        let unsynced = self.buf.len() - self.synced_len;
        let surviving_tail = rng.below(unsynced as u64 + 1) as usize;
        self.buf.truncate(self.synced_len + surviving_tail);
        self.synced_len = self.buf.len();
        SimDisk { buf: self.buf, synced_len: self.synced_len, fsyncs: self.fsyncs }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synced_data_survives_crash() {
        let mut d = SimDisk::new();
        d.append(b"hello");
        d.fsync();
        d.append(b"world");
        let mut rng = DetRng::new(1);
        let d2 = d.crash(&mut rng);
        assert!(d2.contents().starts_with(b"hello"));
        assert!(d2.len() >= 5 && d2.len() <= 10);
    }

    #[test]
    fn crash_without_fsync_may_lose_everything() {
        // With many seeds, at least one crash drops the whole tail and at
        // least one keeps some of it.
        let mut kept_none = false;
        let mut kept_some = false;
        for seed in 0..32 {
            let mut d = SimDisk::new();
            d.append(b"volatile");
            let mut rng = DetRng::new(seed);
            let d2 = d.crash(&mut rng);
            if d2.is_empty() {
                kept_none = true;
            } else {
                kept_some = true;
            }
        }
        assert!(kept_none && kept_some, "crash prefix should vary by seed");
    }

    #[test]
    fn fsync_counter_tracks_barriers() {
        let mut d = SimDisk::new();
        d.append(b"a");
        d.fsync();
        d.append(b"b");
        d.fsync();
        assert_eq!(d.fsyncs, 2);
        assert_eq!(d.synced_len(), 2);
    }

    #[test]
    fn replace_swaps_contents_atomically_and_durably() {
        let mut d = SimDisk::new();
        d.append(b"old history");
        d.fsync();
        d.append(b"torn tail");
        d.replace(b"snapshot");
        assert_eq!(d.contents(), b"snapshot");
        assert_eq!(d.synced_len(), 8, "replacement is immediately durable");
        assert_eq!(d.fsyncs, 2, "the rename costs one barrier");
        // Any crash after the replace keeps the full new image.
        let mut rng = DetRng::new(9);
        let d2 = d.crash(&mut rng);
        assert_eq!(d2.contents(), b"snapshot");
    }

    #[test]
    fn crash_is_idempotent_on_synced_state() {
        let mut d = SimDisk::new();
        d.append(b"abc");
        d.fsync();
        let mut rng = DetRng::new(3);
        let d2 = d.clone().crash(&mut rng);
        assert_eq!(d2.contents(), b"abc");
        let d3 = d2.crash(&mut rng);
        assert_eq!(d3.contents(), b"abc");
    }
}
