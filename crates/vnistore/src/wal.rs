//! Write-ahead-log record format with CRC-guarded framing.
//!
//! Record layout on the device:
//!
//! ```text
//! | magic u16 | kind u8 | lsn u64 | payload_len u32 | crc32 u32 | payload |
//! ```
//!
//! Recovery scans records from the start and stops at the first frame
//! whose header is truncated, whose magic is wrong, or whose CRC does not
//! match — exactly the torn-tail discipline SQLite's journal uses.
//!
//! # Example
//!
//! A torn tail (e.g. a crash mid-append) is detected and cleanly cut:
//!
//! ```
//! use shs_vnistore::wal::{decode_all, encode, Record, RecordKind};
//!
//! let a = encode(&Record { kind: RecordKind::Commit, lsn: 1, payload: b"alpha".to_vec() });
//! let b = encode(&Record { kind: RecordKind::Commit, lsn: 2, payload: b"beta".to_vec() });
//! let mut log = [a.clone(), b].concat();
//!
//! // Tear the last record mid-frame.
//! log.truncate(a.len() + 5);
//! let (records, consumed) = decode_all(&log);
//! assert_eq!(records.len(), 1, "only the intact record survives");
//! assert_eq!(records[0].payload, b"alpha");
//! assert_eq!(consumed, a.len(), "the torn tail is not consumed");
//! ```

/// Frame magic.
pub const MAGIC: u16 = 0x5A1C; // "SLIC"-ish

/// Record kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecordKind {
    /// A committed transaction's operation batch.
    Commit = 1,
    /// A full-state snapshot (checkpoint); earlier records are obsolete.
    Snapshot = 2,
    /// A group commit: several transactions' op payloads framed as ONE
    /// record (see [`push_batch_txn`]/[`decode_batch`]). `lsn` is the
    /// first transaction's; recovery advances by the txn count. The
    /// whole-frame CRC makes the batch all-or-nothing: a crash mid-write
    /// tears the frame and every transaction in it is rolled back
    /// together.
    Batch = 3,
}

/// A decoded WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Record {
    /// Kind tag.
    pub kind: RecordKind,
    /// Log sequence number.
    pub lsn: u64,
    /// Opaque payload (encoded ops or snapshot).
    pub payload: Vec<u8>,
}

const HEADER_LEN: usize = 2 + 1 + 8 + 4 + 4;

/// Byte-at-a-time CRC-32 lookup table, built at compile time from the
/// same bitwise recurrence the original implementation ran per bit.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE), table-driven: every commit frame CRCs its payload on
/// the transaction hot path, so this is one table lookup per byte
/// rather than eight shift/xor rounds (the `crc32_known_vector` test
/// pins it to the standard polynomial).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc: u32 = 0xFFFF_FFFF;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Encode one record into its wire frame.
pub fn encode(rec: &Record) -> Vec<u8> {
    let mut out = Vec::with_capacity(HEADER_LEN + rec.payload.len());
    encode_into(rec.kind, rec.lsn, &rec.payload, &mut out);
    out
}

/// Append one record's wire frame to `out` — the zero-alloc path
/// [`encode`] wraps; the store calls this with a reused frame buffer so
/// steady-state commits never allocate for framing. Byte-identical to
/// `encode` of the same record.
pub fn encode_into(kind: RecordKind, lsn: u64, payload: &[u8], out: &mut Vec<u8>) {
    out.reserve(HEADER_LEN + payload.len());
    out.extend_from_slice(&MAGIC.to_le_bytes());
    out.push(kind as u8);
    out.extend_from_slice(&lsn.to_le_bytes());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
}

/// Decode all valid records from a device image, stopping cleanly at the
/// first torn or corrupt frame. Returns the records and the byte offset
/// of the valid prefix.
pub fn decode_all(bytes: &[u8]) -> (Vec<Record>, usize) {
    let mut records = Vec::new();
    let mut off = 0usize;
    while bytes.len() - off >= HEADER_LEN {
        let magic = u16::from_le_bytes([bytes[off], bytes[off + 1]]);
        if magic != MAGIC {
            break;
        }
        let kind = match bytes[off + 2] {
            1 => RecordKind::Commit,
            2 => RecordKind::Snapshot,
            3 => RecordKind::Batch,
            _ => break,
        };
        let lsn = u64::from_le_bytes(bytes[off + 3..off + 11].try_into().expect("8 bytes"));
        let plen =
            u32::from_le_bytes(bytes[off + 11..off + 15].try_into().expect("4 bytes")) as usize;
        let crc =
            u32::from_le_bytes(bytes[off + 15..off + 19].try_into().expect("4 bytes"));
        let body_start = off + HEADER_LEN;
        let Some(body_end) = body_start.checked_add(plen) else { break };
        if body_end > bytes.len() {
            break; // torn payload
        }
        let payload = &bytes[body_start..body_end];
        if crc32(payload) != crc {
            break; // corrupt payload
        }
        records.push(Record { kind, lsn, payload: payload.to_vec() });
        off = body_end;
    }
    (records, off)
}

/// Append one transaction's encoded ops to an accumulating
/// [`RecordKind::Batch`] payload: `u32 len | ops bytes` per transaction
/// (a zero-op commit contributes a zero-length entry and still counts
/// toward the batch's LSN span).
pub fn push_batch_txn(group: &mut Vec<u8>, ops_payload: &[u8]) {
    group.extend_from_slice(&(ops_payload.len() as u32).to_le_bytes());
    group.extend_from_slice(ops_payload);
}

/// Split a [`RecordKind::Batch`] payload back into per-transaction op
/// payloads. The frame CRC already vouches for the bytes, so a
/// malformed inner length can only mean an encoder bug — the scan stops
/// defensively rather than panicking.
pub fn decode_batch(payload: &[u8]) -> Vec<&[u8]> {
    let mut txns = Vec::new();
    let mut off = 0usize;
    while payload.len() - off >= 4 {
        let len =
            u32::from_le_bytes(payload[off..off + 4].try_into().expect("4 bytes")) as usize;
        off += 4;
        let Some(end) = off.checked_add(len) else { break };
        if end > payload.len() {
            break;
        }
        txns.push(&payload[off..end]);
        off = end;
    }
    txns
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(lsn: u64, kind: RecordKind, payload: &[u8]) -> Record {
        Record { kind, lsn, payload: payload.to_vec() }
    }

    #[test]
    fn crc32_known_vector() {
        // Standard IEEE CRC-32 of "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn encode_decode_roundtrip() {
        let mut image = Vec::new();
        let records = vec![
            rec(1, RecordKind::Commit, b"alpha"),
            rec(2, RecordKind::Snapshot, b""),
            rec(3, RecordKind::Commit, &[0u8; 1000]),
        ];
        for r in &records {
            image.extend_from_slice(&encode(r));
        }
        let (decoded, consumed) = decode_all(&image);
        assert_eq!(decoded, records);
        assert_eq!(consumed, image.len());
    }

    #[test]
    fn torn_header_stops_scan() {
        let mut image = encode(&rec(1, RecordKind::Commit, b"ok"));
        let whole = encode(&rec(2, RecordKind::Commit, b"lost"));
        image.extend_from_slice(&whole[..HEADER_LEN - 2]); // torn header
        let (decoded, consumed) = decode_all(&image);
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].payload, b"ok");
        assert!(consumed < image.len());
    }

    #[test]
    fn torn_payload_stops_scan() {
        let mut image = encode(&rec(1, RecordKind::Commit, b"ok"));
        let whole = encode(&rec(2, RecordKind::Commit, b"0123456789"));
        image.extend_from_slice(&whole[..whole.len() - 3]); // torn payload
        let (decoded, _) = decode_all(&image);
        assert_eq!(decoded.len(), 1);
    }

    #[test]
    fn corrupt_payload_detected_by_crc() {
        let mut frame = encode(&rec(1, RecordKind::Commit, b"payload"));
        let last = frame.len() - 1;
        frame[last] ^= 0xFF; // flip a payload bit
        let (decoded, _) = decode_all(&frame);
        assert!(decoded.is_empty());
    }

    #[test]
    fn garbage_magic_is_rejected() {
        let (decoded, consumed) = decode_all(b"not a wal at all, definitely");
        assert!(decoded.is_empty());
        assert_eq!(consumed, 0);
    }

    #[test]
    fn batch_payload_roundtrips_per_txn() {
        let mut group = Vec::new();
        push_batch_txn(&mut group, b"txn-a");
        push_batch_txn(&mut group, b"");
        push_batch_txn(&mut group, b"txn-c-longer");
        let txns = decode_batch(&group);
        assert_eq!(txns, vec![&b"txn-a"[..], &b""[..], &b"txn-c-longer"[..]]);
    }

    #[test]
    fn batch_record_roundtrips_through_the_frame() {
        let mut group = Vec::new();
        push_batch_txn(&mut group, b"alpha");
        push_batch_txn(&mut group, b"beta");
        let frame = encode(&rec(5, RecordKind::Batch, &group));
        let (decoded, consumed) = decode_all(&frame);
        assert_eq!(consumed, frame.len());
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].kind, RecordKind::Batch);
        assert_eq!(decoded[0].lsn, 5);
        assert_eq!(decode_batch(&decoded[0].payload).len(), 2);
    }

    #[test]
    fn truncated_batch_inner_length_stops_defensively() {
        let mut group = Vec::new();
        push_batch_txn(&mut group, b"ok");
        group.extend_from_slice(&(100u32).to_le_bytes()); // lies past the end
        group.extend_from_slice(b"short");
        let txns = decode_batch(&group);
        assert_eq!(txns, vec![&b"ok"[..]]);
    }

    #[test]
    fn empty_payload_records_are_valid() {
        let frame = encode(&rec(7, RecordKind::Snapshot, b""));
        let (decoded, consumed) = decode_all(&frame);
        assert_eq!(decoded.len(), 1);
        assert_eq!(decoded[0].lsn, 7);
        assert_eq!(consumed, frame.len());
    }
}
