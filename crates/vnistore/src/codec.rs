//! Length-prefixed binary primitives shared by the WAL's operation
//! encoding and the typed row codecs layered on top of the store (the
//! VNI Database's `vnis`/`audit_log` tables encode through these).
//!
//! Layout: scalars are little-endian fixed width; byte strings are a
//! `u32` length followed by the bytes. Decoders return `None` on a
//! truncated buffer instead of panicking, so a corrupt row surfaces as
//! a decode failure the caller can attribute.
//!
//! # Example
//!
//! ```
//! use shs_vnistore::codec::{push_bytes, push_u64, read_bytes, read_u64};
//!
//! let mut buf = Vec::new();
//! push_u64(&mut buf, 42);
//! push_bytes(&mut buf, b"tenant/train");
//! let mut off = 0;
//! assert_eq!(read_u64(&buf, &mut off), Some(42));
//! assert_eq!(read_bytes(&buf, &mut off).as_deref(), Some(&b"tenant/train"[..]));
//! assert_eq!(off, buf.len());
//! ```

/// Append a `u32`-length-prefixed byte string.
pub fn push_bytes(out: &mut Vec<u8>, b: &[u8]) {
    out.extend_from_slice(&(b.len() as u32).to_le_bytes());
    out.extend_from_slice(b);
}

/// Read a length-prefixed byte string written by [`push_bytes`].
pub fn read_bytes(buf: &[u8], off: &mut usize) -> Option<Vec<u8>> {
    read_slice(buf, off).map(<[u8]>::to_vec)
}

/// Borrowing variant of [`read_bytes`]: no copy, same framing.
pub fn read_slice<'a>(buf: &'a [u8], off: &mut usize) -> Option<&'a [u8]> {
    if buf.len().saturating_sub(*off) < 4 {
        return None;
    }
    let len = u32::from_le_bytes(buf[*off..*off + 4].try_into().ok()?) as usize;
    *off += 4;
    if buf.len().saturating_sub(*off) < len {
        *off -= 4;
        return None;
    }
    let s = &buf[*off..*off + len];
    *off += len;
    Some(s)
}

/// Append a little-endian `u64`.
pub fn push_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u64`.
pub fn read_u64(buf: &[u8], off: &mut usize) -> Option<u64> {
    if buf.len().saturating_sub(*off) < 8 {
        return None;
    }
    let v = u64::from_le_bytes(buf[*off..*off + 8].try_into().ok()?);
    *off += 8;
    Some(v)
}

/// Append a little-endian `u32`.
pub fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u32`.
pub fn read_u32(buf: &[u8], off: &mut usize) -> Option<u32> {
    if buf.len().saturating_sub(*off) < 4 {
        return None;
    }
    let v = u32::from_le_bytes(buf[*off..*off + 4].try_into().ok()?);
    *off += 4;
    Some(v)
}

/// Append a single byte (tag fields).
pub fn push_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

/// Read a single byte.
pub fn read_u8(buf: &[u8], off: &mut usize) -> Option<u8> {
    let b = *buf.get(*off)?;
    *off += 1;
    Some(b)
}

/// Append a little-endian `u16`.
pub fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Read a little-endian `u16`.
pub fn read_u16(buf: &[u8], off: &mut usize) -> Option<u16> {
    if buf.len().saturating_sub(*off) < 2 {
        return None;
    }
    let v = u16::from_le_bytes(buf[*off..*off + 2].try_into().ok()?);
    *off += 2;
    Some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrip() {
        let mut buf = Vec::new();
        push_u8(&mut buf, 0x7F);
        push_u16(&mut buf, 0xBEEF);
        push_u32(&mut buf, 0xDEAD_BEEF);
        push_u64(&mut buf, u64::MAX);
        let mut off = 0;
        assert_eq!(read_u8(&buf, &mut off), Some(0x7F));
        assert_eq!(read_u16(&buf, &mut off), Some(0xBEEF));
        assert_eq!(read_u32(&buf, &mut off), Some(0xDEAD_BEEF));
        assert_eq!(read_u64(&buf, &mut off), Some(u64::MAX));
        assert_eq!(off, buf.len());
        assert_eq!(read_u8(&buf, &mut off), None, "exhausted buffer");
    }

    #[test]
    fn truncated_reads_return_none_without_advancing() {
        let mut buf = Vec::new();
        push_bytes(&mut buf, b"abcdef");
        // Cut into the payload: the length header parses but the body is
        // short, and `off` must be left where the read started.
        let cut = &buf[..buf.len() - 1];
        let mut off = 0;
        assert_eq!(read_slice(cut, &mut off), None);
        assert_eq!(off, 0, "failed read must not consume the length header");
        assert_eq!(read_u64(&buf[..7], &mut off), None, "u64 needs 8 bytes");
        assert_eq!(read_u16(&buf[..1], &mut off), None);
        assert_eq!(read_u32(&buf[..3], &mut off), None);
    }

    #[test]
    fn empty_strings_are_valid() {
        let mut buf = Vec::new();
        push_bytes(&mut buf, b"");
        push_bytes(&mut buf, b"x");
        let mut off = 0;
        assert_eq!(read_bytes(&buf, &mut off).as_deref(), Some(&b""[..]));
        assert_eq!(read_bytes(&buf, &mut off).as_deref(), Some(&b"x"[..]));
    }
}
