//! The Cassini (CXI) NIC model: realized services, RDMA endpoints,
//! memory regions, and the timed send/deliver data path.
//!
//! Authorization *decisions* live in the driver (`shs-cxi`); the NIC only
//! holds the *realized* service table the driver programmed into it and
//! enforces mechanical limits (VNI membership of a service, endpoint
//! counts). This mirrors the hardware/driver split in §II-C.

use std::collections::{BTreeMap, VecDeque};

use shs_des::{DetRng, SimDur, SimTime};
use shs_fabric::{DropReason, Fabric, NicAddr, TrafficClass, TransferOutcome, Vni};

use crate::params::CassiniParams;

/// NIC-local service identifier (driver-assigned).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SvcId(pub u32);

/// NIC-local endpoint index.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EpIdx(pub u32);

/// Remote-access key for a registered memory region.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct MrKey(pub u64);

/// Errors surfaced by NIC operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum NicError {
    /// Service id not programmed into the NIC.
    NoSuchService,
    /// Service exists but is administratively disabled.
    ServiceDisabled,
    /// The requested VNI is not in the service's allow set.
    VniNotAllowed,
    /// Per-service endpoint limit reached.
    EndpointLimit,
    /// Endpoint index not allocated.
    NoSuchEndpoint,
    /// Memory-region key unknown at the target.
    NoSuchMr,
    /// Memory-region access violation (bounds or permission).
    MrAccess,
}

impl core::fmt::Display for NicError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        let s = match self {
            NicError::NoSuchService => "no such CXI service",
            NicError::ServiceDisabled => "CXI service disabled",
            NicError::VniNotAllowed => "VNI not allowed by CXI service",
            NicError::EndpointLimit => "service endpoint limit reached",
            NicError::NoSuchEndpoint => "no such endpoint",
            NicError::NoSuchMr => "no such memory region",
            NicError::MrAccess => "memory region access violation",
        };
        f.write_str(s)
    }
}

impl std::error::Error for NicError {}

/// Resource limits a CXI service may impose (§II-C: services "can be
/// configured to limit the use of communication resources").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[derive(Default)]
pub struct SvcLimits {
    /// Maximum concurrently allocated endpoints (None = unlimited).
    pub max_endpoints: Option<u32>,
    /// Maximum registered memory regions (None = unlimited).
    pub max_mrs: Option<u32>,
}


/// A service entry as programmed into the NIC by the driver.
#[derive(Debug, Clone)]
pub struct ServiceEntry {
    /// Driver-assigned id.
    pub id: SvcId,
    /// VNIs this service may communicate on.
    pub vnis: Vec<Vni>,
    /// Resource limits.
    pub limits: SvcLimits,
    /// Administrative state.
    pub enabled: bool,
}

/// A message delivered into an endpoint's receive queue.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RxMessage {
    /// Sender NIC.
    pub src: NicAddr,
    /// Sender endpoint index.
    pub src_ep: EpIdx,
    /// Tag carried end-to-end (matched by the libfabric layer).
    pub tag: u64,
    /// Payload length.
    pub len: u64,
    /// Message id (sender-assigned).
    pub msg_id: u64,
    /// Instant the message became visible to software.
    pub delivered_at: SimTime,
}

/// One RDMA endpoint.
#[derive(Debug)]
pub struct Endpoint {
    /// Index on this NIC.
    pub idx: EpIdx,
    /// Owning service.
    pub svc: SvcId,
    /// The VNI this endpoint is bound to.
    pub vni: Vni,
    /// Traffic class for all messages from this endpoint.
    pub tc: TrafficClass,
    /// Receive queue (consumed by the libfabric layer).
    pub rx_queue: VecDeque<RxMessage>,
}

/// A registered memory region (simplified: a length + RW permissions).
#[derive(Debug, Clone, Copy)]
pub struct MemoryRegion {
    /// Remote key.
    pub key: MrKey,
    /// Owning endpoint.
    pub ep: EpIdx,
    /// Region length in bytes.
    pub len: u64,
    /// Remote reads permitted.
    pub remote_read: bool,
    /// Remote writes permitted.
    pub remote_write: bool,
}

/// Timing of a successfully issued message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendTiming {
    /// When the NIC finished issuing the message (doorbell + TX engine).
    pub issued: SimTime,
    /// When the local RDMA completion fires (last byte on the wire).
    pub local_completion: SimTime,
    /// When the message is visible to software on the remote NIC.
    pub remote_delivery: SimTime,
}

/// Outcome of a send.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendOutcome {
    /// Message sent; see timing.
    Sent(SendTiming),
    /// Message left the NIC but was dropped in the fabric. RDMA drops are
    /// silent at the sender — the timing tells when the NIC *thought* it
    /// completed locally; no remote delivery happens.
    FabricDropped {
        /// Why the fabric dropped it.
        reason: DropReason,
        /// Local completion still fires (kernel-bypass sender is unaware).
        local_completion: SimTime,
    },
}

/// Data-path counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NicCounters {
    /// Messages issued.
    pub tx_msgs: u64,
    /// Payload bytes issued.
    pub tx_bytes: u64,
    /// Messages issued per traffic class (the class every packet is
    /// tagged with on the wire), in [`TrafficClass::index`] order.
    pub tx_by_class: [u64; 4],
    /// Messages delivered to endpoints.
    pub rx_msgs: u64,
    /// Payload bytes delivered.
    pub rx_bytes: u64,
    /// Messages the fabric refused to route.
    pub fabric_drops: u64,
    /// RMA operations rejected at the target MR check.
    pub mr_violations: u64,
}

/// The Cassini NIC.
#[derive(Debug)]
pub struct CassiniNic {
    /// Fabric address.
    pub addr: NicAddr,
    params: CassiniParams,
    services: BTreeMap<SvcId, ServiceEntry>,
    endpoints: BTreeMap<EpIdx, Endpoint>,
    mrs: BTreeMap<MrKey, MemoryRegion>,
    next_ep: u32,
    next_mr: u64,
    next_msg: u64,
    tx_engine_busy: SimTime,
    rng: DetRng,
    /// Per-run multiplicative factor on all NIC overheads (run-to-run
    /// jitter; re-drawn via [`CassiniNic::new_run`]).
    run_factor: f64,
    /// Counters.
    pub counters: NicCounters,
}

impl CassiniNic {
    /// Create a NIC with the given address and parameters; `rng` seeds the
    /// jitter streams.
    pub fn new(addr: NicAddr, params: CassiniParams, rng: DetRng) -> Self {
        let mut rng = rng;
        let run_factor = rng.jitter(params.per_run_sigma);
        CassiniNic {
            addr,
            params,
            services: BTreeMap::new(),
            endpoints: BTreeMap::new(),
            mrs: BTreeMap::new(),
            next_ep: 0,
            next_mr: 1,
            next_msg: 1,
            tx_engine_busy: SimTime::ZERO,
            rng,
            run_factor,
            counters: NicCounters::default(),
        }
    }

    /// Parameters in force.
    pub fn params(&self) -> &CassiniParams {
        &self.params
    }

    /// Begin a new measurement run: re-draw the per-run jitter factor
    /// (models the paper's "run-to-run network jitter" baseline).
    pub fn new_run(&mut self) {
        self.run_factor = self.rng.jitter(self.params.per_run_sigma);
    }

    // ---- service table (driver-facing) ----------------------------------

    /// Program a service entry (driver operation).
    pub fn configure_service(&mut self, entry: ServiceEntry) {
        self.services.insert(entry.id, entry);
    }

    /// Remove a service and free all its endpoints. Returns how many
    /// endpoints were torn down.
    pub fn remove_service(&mut self, id: SvcId) -> usize {
        self.services.remove(&id);
        let doomed: Vec<EpIdx> = self
            .endpoints
            .values()
            .filter(|e| e.svc == id)
            .map(|e| e.idx)
            .collect();
        for idx in &doomed {
            self.endpoints.remove(idx);
            self.mrs.retain(|_, mr| mr.ep != *idx);
        }
        doomed.len()
    }

    /// Look up a programmed service.
    pub fn service(&self, id: SvcId) -> Option<&ServiceEntry> {
        self.services.get(&id)
    }

    /// Number of live endpoints owned by a service.
    pub fn endpoints_of(&self, id: SvcId) -> usize {
        self.endpoints.values().filter(|e| e.svc == id).count()
    }

    // ---- endpoints -------------------------------------------------------

    /// Allocate an RDMA endpoint under `svc` bound to `vni`. The *driver*
    /// must have authenticated the caller against the service's member
    /// list before calling this (see `shs-cxi`); the NIC enforces only
    /// mechanical validity.
    pub fn alloc_endpoint(
        &mut self,
        svc: SvcId,
        vni: Vni,
        tc: TrafficClass,
    ) -> Result<EpIdx, NicError> {
        let entry = self.services.get(&svc).ok_or(NicError::NoSuchService)?;
        if !entry.enabled {
            return Err(NicError::ServiceDisabled);
        }
        if !entry.vnis.contains(&vni) {
            return Err(NicError::VniNotAllowed);
        }
        if let Some(max) = entry.limits.max_endpoints {
            if self.endpoints_of(svc) as u32 >= max {
                return Err(NicError::EndpointLimit);
            }
        }
        let idx = EpIdx(self.next_ep);
        self.next_ep += 1;
        self.endpoints.insert(
            idx,
            Endpoint { idx, svc, vni, tc, rx_queue: VecDeque::new() },
        );
        Ok(idx)
    }

    /// Free an endpoint and its memory regions.
    pub fn free_endpoint(&mut self, idx: EpIdx) -> Result<(), NicError> {
        self.endpoints.remove(&idx).ok_or(NicError::NoSuchEndpoint)?;
        self.mrs.retain(|_, mr| mr.ep != idx);
        Ok(())
    }

    /// Access an endpoint.
    pub fn endpoint(&self, idx: EpIdx) -> Result<&Endpoint, NicError> {
        self.endpoints.get(&idx).ok_or(NicError::NoSuchEndpoint)
    }

    /// Mutable access to an endpoint.
    pub fn endpoint_mut(&mut self, idx: EpIdx) -> Result<&mut Endpoint, NicError> {
        self.endpoints.get_mut(&idx).ok_or(NicError::NoSuchEndpoint)
    }

    // ---- memory regions --------------------------------------------------

    /// Register a memory region for remote access.
    pub fn register_mr(
        &mut self,
        ep: EpIdx,
        len: u64,
        remote_read: bool,
        remote_write: bool,
    ) -> Result<MrKey, NicError> {
        let endpoint = self.endpoints.get(&ep).ok_or(NicError::NoSuchEndpoint)?;
        let svc = self.services.get(&endpoint.svc).ok_or(NicError::NoSuchService)?;
        if let Some(max) = svc.limits.max_mrs {
            let owned = self.mrs.values().filter(|m| m.ep == ep).count();
            if owned as u32 >= max {
                return Err(NicError::MrAccess);
            }
        }
        let key = MrKey(self.next_mr);
        self.next_mr += 1;
        self.mrs.insert(key, MemoryRegion { key, ep, len, remote_read, remote_write });
        Ok(key)
    }

    /// Deregister a memory region.
    pub fn deregister_mr(&mut self, key: MrKey) -> Result<(), NicError> {
        self.mrs.remove(&key).map(|_| ()).ok_or(NicError::NoSuchMr)
    }

    /// Validate a remote access against a registered MR.
    pub fn check_rma(&mut self, key: MrKey, offset: u64, len: u64, write: bool) -> Result<EpIdx, NicError> {
        let Some(mr) = self.mrs.get(&key) else {
            self.counters.mr_violations += 1;
            return Err(NicError::NoSuchMr);
        };
        let perm_ok = if write { mr.remote_write } else { mr.remote_read };
        let bounds_ok = offset.checked_add(len).is_some_and(|end| end <= mr.len);
        if !perm_ok || !bounds_ok {
            self.counters.mr_violations += 1;
            return Err(NicError::MrAccess);
        }
        Ok(mr.ep)
    }

    // ---- data path ---------------------------------------------------------

    /// Issue a message send. Kernel is not involved — this is the
    /// kernel-bypass path, which is why its cost is identical whether or
    /// not the container integration is active (the paper's Figs. 5-8).
    #[allow(clippy::too_many_arguments)]
    pub fn send(
        &mut self,
        now: SimTime,
        fabric: &mut Fabric,
        ep_idx: EpIdx,
        dst: NicAddr,
        _dst_ep: EpIdx,
        _tag: u64,
        len: u64,
    ) -> Result<SendOutcome, NicError> {
        let (vni, tc) = {
            let ep = self.endpoints.get(&ep_idx).ok_or(NicError::NoSuchEndpoint)?;
            (ep.vni, ep.tc)
        };
        let msg_id = self.next_msg;
        self.next_msg += 1;

        let noise = self.rng.jitter(self.params.per_msg_sigma) * self.run_factor;
        let doorbell = SimDur::from_nanos((self.params.doorbell_ns as f64 * noise) as u64);
        let tx_cost = SimDur::from_nanos((self.params.tx_msg_ns as f64 * noise) as u64);

        // ECN sender pacing: every congestion mark the fabric fed back
        // since this NIC's previous send delays the next issue. Zero
        // marks (any fabric at the default ECN threshold) adds nothing.
        let pace = SimDur::from_nanos(self.params.ecn_pace_ns * fabric.take_ecn_marks(self.addr));

        // TX engine serializes message issue.
        let start = (now + doorbell + pace).max(self.tx_engine_busy);
        let issued = start + tx_cost;
        self.tx_engine_busy = issued;

        self.counters.tx_msgs += 1;
        self.counters.tx_bytes += len;
        self.counters.tx_by_class[tc.index()] += 1;

        match fabric.transfer(issued, self.addr, dst, vni, tc, len, msg_id) {
            TransferOutcome::Delivered { arrival, src_done } => {
                // Remote software sees it after RX processing.
                let rx_cost =
                    SimDur::from_nanos((self.params.rx_msg_ns as f64 * noise) as u64);
                Ok(SendOutcome::Sent(SendTiming {
                    issued,
                    local_completion: src_done,
                    remote_delivery: arrival + rx_cost,
                }))
            }
            TransferOutcome::Dropped(reason) => {
                self.counters.fabric_drops += 1;
                Ok(SendOutcome::FabricDropped { reason, local_completion: issued })
            }
        }
    }

    /// Book a delivered message into the destination endpoint's receive
    /// queue (invoked on the *receiving* NIC by the composition layer at
    /// the message's delivery instant). Messages addressed to endpoints
    /// on a different VNI than they travelled on are discarded — the NIC
    /// checks the VNI field of arriving packets.
    pub fn deliver(
        &mut self,
        dst_ep: EpIdx,
        vni: Vni,
        msg: RxMessage,
    ) -> Result<(), NicError> {
        let ep = self.endpoints.get_mut(&dst_ep).ok_or(NicError::NoSuchEndpoint)?;
        if ep.vni != vni {
            return Err(NicError::VniNotAllowed);
        }
        self.counters.rx_msgs += 1;
        self.counters.rx_bytes += msg.len;
        ep.rx_queue.push_back(msg);
        Ok(())
    }

    /// Pop the next received message on an endpoint, if any.
    pub fn poll_rx(&mut self, ep: EpIdx) -> Result<Option<RxMessage>, NicError> {
        Ok(self.endpoints.get_mut(&ep).ok_or(NicError::NoSuchEndpoint)?.rx_queue.pop_front())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rig() -> (Fabric, CassiniNic, CassiniNic) {
        let mut fabric = Fabric::new(8);
        let rng = DetRng::new(77);
        let a = CassiniNic::new(NicAddr(1), CassiniParams::default(), rng.derive("a"));
        let b = CassiniNic::new(NicAddr(2), CassiniParams::default(), rng.derive("b"));
        fabric.attach(a.addr);
        fabric.attach(b.addr);
        fabric.grant_vni(a.addr, Vni(5)).unwrap();
        fabric.grant_vni(b.addr, Vni(5)).unwrap();
        (fabric, a, b)
    }

    fn svc(id: u32, vnis: &[u16]) -> ServiceEntry {
        ServiceEntry {
            id: SvcId(id),
            vnis: vnis.iter().map(|&v| Vni(v)).collect(),
            limits: SvcLimits::default(),
            enabled: true,
        }
    }

    #[test]
    fn endpoint_allocation_respects_service_table() {
        let (_, mut a, _) = rig();
        assert_eq!(
            a.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated),
            Err(NicError::NoSuchService)
        );
        a.configure_service(svc(1, &[5]));
        let ep = a.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated).unwrap();
        assert_eq!(a.endpoint(ep).unwrap().vni, Vni(5));
        assert_eq!(
            a.alloc_endpoint(SvcId(1), Vni(6), TrafficClass::Dedicated),
            Err(NicError::VniNotAllowed)
        );
    }

    #[test]
    fn disabled_service_rejects_endpoints() {
        let (_, mut a, _) = rig();
        let mut e = svc(1, &[5]);
        e.enabled = false;
        a.configure_service(e);
        assert_eq!(
            a.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated),
            Err(NicError::ServiceDisabled)
        );
    }

    #[test]
    fn endpoint_limits_enforced() {
        let (_, mut a, _) = rig();
        let mut e = svc(1, &[5]);
        e.limits.max_endpoints = Some(2);
        a.configure_service(e);
        a.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated).unwrap();
        a.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated).unwrap();
        assert_eq!(
            a.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated),
            Err(NicError::EndpointLimit)
        );
        // Freeing one re-opens the slot.
        a.free_endpoint(EpIdx(0)).unwrap();
        a.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated).unwrap();
    }

    #[test]
    fn remove_service_tears_down_endpoints() {
        let (_, mut a, _) = rig();
        a.configure_service(svc(1, &[5]));
        let ep = a.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated).unwrap();
        a.register_mr(ep, 4096, true, true).unwrap();
        assert_eq!(a.remove_service(SvcId(1)), 1);
        assert_eq!(a.endpoint(ep).unwrap_err(), NicError::NoSuchEndpoint);
        assert_eq!(a.check_rma(MrKey(1), 0, 8, false).unwrap_err(), NicError::NoSuchMr);
    }

    #[test]
    fn send_and_deliver_roundtrip() {
        let (mut f, mut a, mut b) = rig();
        a.configure_service(svc(1, &[5]));
        b.configure_service(svc(1, &[5]));
        let ea = a.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated).unwrap();
        let eb = b.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated).unwrap();
        let out = a.send(SimTime::ZERO, &mut f, ea, b.addr, eb, 42, 1024).unwrap();
        let SendOutcome::Sent(t) = out else { panic!("dropped: {out:?}") };
        assert!(t.local_completion >= t.issued);
        assert!(t.remote_delivery > t.local_completion);
        b.deliver(
            eb,
            Vni(5),
            RxMessage {
                src: a.addr,
                src_ep: ea,
                tag: 42,
                len: 1024,
                msg_id: 1,
                delivered_at: t.remote_delivery,
            },
        )
        .unwrap();
        let got = b.poll_rx(eb).unwrap().unwrap();
        assert_eq!(got.tag, 42);
        assert_eq!(got.len, 1024);
        assert_eq!(b.counters.rx_msgs, 1);
        assert_eq!(a.counters.tx_msgs, 1);
        assert_eq!(a.counters.tx_by_class[TrafficClass::Dedicated.index()], 1);
        assert_eq!(a.counters.tx_by_class[TrafficClass::BulkData.index()], 0);
    }

    #[test]
    fn fabric_drop_is_silent_at_sender() {
        let (mut f, mut a, mut b) = rig();
        a.configure_service(svc(1, &[9])); // VNI 9 not granted on the wire
        b.configure_service(svc(1, &[9]));
        let ea = a.alloc_endpoint(SvcId(1), Vni(9), TrafficClass::Dedicated).unwrap();
        let eb = b.alloc_endpoint(SvcId(1), Vni(9), TrafficClass::Dedicated).unwrap();
        let out = a.send(SimTime::ZERO, &mut f, ea, b.addr, eb, 1, 64).unwrap();
        match out {
            SendOutcome::FabricDropped { reason, local_completion } => {
                assert_eq!(reason, DropReason::VniDeniedIngress);
                assert!(local_completion > SimTime::ZERO);
            }
            other => panic!("expected drop, got {other:?}"),
        }
        assert_eq!(a.counters.fabric_drops, 1);
        assert!(b.poll_rx(eb).unwrap().is_none());
    }

    #[test]
    fn delivery_rejects_vni_mismatch() {
        let (_, _, mut b) = rig();
        b.configure_service(svc(1, &[5]));
        let eb = b.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated).unwrap();
        let err = b
            .deliver(
                eb,
                Vni(6),
                RxMessage {
                    src: NicAddr(1),
                    src_ep: EpIdx(0),
                    tag: 0,
                    len: 8,
                    msg_id: 1,
                    delivered_at: SimTime::ZERO,
                },
            )
            .unwrap_err();
        assert_eq!(err, NicError::VniNotAllowed);
        assert_eq!(b.counters.rx_msgs, 0);
    }

    #[test]
    fn tx_engine_serializes_issue() {
        let (mut f, mut a, mut b) = rig();
        a.configure_service(svc(1, &[5]));
        b.configure_service(svc(1, &[5]));
        let ea = a.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated).unwrap();
        let eb = b.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated).unwrap();
        let mut last_issue = SimTime::ZERO;
        for i in 0..16 {
            let SendOutcome::Sent(t) =
                a.send(SimTime::ZERO, &mut f, ea, b.addr, eb, i, 8).unwrap()
            else {
                panic!()
            };
            assert!(t.issued > last_issue, "issues must be strictly ordered");
            last_issue = t.issued;
        }
        // 16 small messages from t=0: issue rate limited by tx_msg_ns.
        let ns = last_issue.as_nanos();
        assert!(ns >= 16 * 250, "tx engine too fast: {ns}ns for 16 msgs");
    }

    #[test]
    fn rma_checks_bounds_and_permissions() {
        let (_, mut a, _) = rig();
        a.configure_service(svc(1, &[5]));
        let ep = a.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated).unwrap();
        let key = a.register_mr(ep, 4096, true, false).unwrap();
        assert_eq!(a.check_rma(key, 0, 4096, false).unwrap(), ep);
        assert_eq!(a.check_rma(key, 4096, 1, false).unwrap_err(), NicError::MrAccess);
        assert_eq!(a.check_rma(key, 0, 1, true).unwrap_err(), NicError::MrAccess);
        assert_eq!(a.check_rma(MrKey(999), 0, 1, false).unwrap_err(), NicError::NoSuchMr);
        assert_eq!(a.counters.mr_violations, 3);
        a.deregister_mr(key).unwrap();
        assert_eq!(a.check_rma(key, 0, 1, false).unwrap_err(), NicError::NoSuchMr);
    }

    #[test]
    fn per_run_jitter_changes_timing_slightly() {
        let (mut f, mut a, mut b) = rig();
        a.configure_service(svc(1, &[5]));
        b.configure_service(svc(1, &[5]));
        let ea = a.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated).unwrap();
        let eb = b.alloc_endpoint(SvcId(1), Vni(5), TrafficClass::Dedicated).unwrap();
        let SendOutcome::Sent(t1) = a.send(SimTime::ZERO, &mut f, ea, b.addr, eb, 0, 8).unwrap()
        else {
            panic!()
        };
        a.new_run();
        let base = t1.remote_delivery;
        let SendOutcome::Sent(t2) =
            a.send(base, &mut f, ea, b.addr, eb, 0, 8).unwrap()
        else {
            panic!()
        };
        let d1 = (t1.remote_delivery - t1.issued).as_nanos() as f64;
        let d2 = (t2.remote_delivery - t2.issued).as_nanos() as f64;
        let rel = (d1 - d2).abs() / d1;
        assert!(rel < 0.05, "jitter should be small: {rel}");
    }
}
