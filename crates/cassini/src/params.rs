//! Cassini NIC cost-model parameters.
//!
//! Calibrated so that the full stack (libfabric-like layer + MPI-lite on
//! top) reproduces the magnitudes of the paper's Figs. 5 and 7: ~2 µs
//! small-message one-way latency and ~24 GB/s peak `osu_bw` throughput on
//! a 200 Gb/s link. See EXPERIMENTS.md for the calibration record.

/// Timing constants for the NIC data path.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CassiniParams {
    /// Doorbell write + command fetch, per message (ns).
    pub doorbell_ns: u64,
    /// TX engine occupancy per message, excluding wire serialization (ns).
    /// This is the small-message rate limiter.
    pub tx_msg_ns: u64,
    /// RX processing per message: packet reassembly + event write (ns).
    pub rx_msg_ns: u64,
    /// Multiplicative log-normal sigma applied per message (models
    /// intra-run noise; the paper's shaded run-to-run jitter bands come
    /// from the per-run factor below combined with this).
    pub per_msg_sigma: f64,
    /// Multiplicative log-normal sigma for the per-NIC, per-run factor.
    pub per_run_sigma: f64,
    /// Sender pacing per ECN mark (ns): each congestion mark the fabric
    /// fed back since the NIC's previous send delays the next TX issue
    /// by this much. With the cost model's default ECN threshold no
    /// mark ever fires, so legacy runs pay zero pacing.
    pub ecn_pace_ns: u64,
}

impl Default for CassiniParams {
    fn default() -> Self {
        CassiniParams {
            doorbell_ns: 100,
            tx_msg_ns: 480,
            rx_msg_ns: 450,
            per_msg_sigma: 0.002,
            per_run_sigma: 0.003,
            ecn_pace_ns: 500,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_bound_small_message_rate() {
        let p = CassiniParams::default();
        // Per-message cost caps message rate at ~3.3 M msg/s: that is the
        // 1-byte end of the Fig. 5 curve (single-digit MB/s).
        let rate = 1e9 / p.tx_msg_ns as f64;
        assert!(rate > 2e6 && rate < 5e6, "msg rate {rate}");
    }

    #[test]
    fn jitter_sigmas_are_sub_percent() {
        let p = CassiniParams::default();
        assert!(p.per_msg_sigma < 0.01);
        assert!(p.per_run_sigma < 0.01);
    }
}
