//! # shs-cassini — the Cassini (CXI) NIC model
//!
//! Models the Slingshot NIC the paper targets (§II-B): a kernel-bypass
//! RDMA device exposing endpoints bound to a (VNI, traffic class) pair,
//! with a service table programmed by the CXI driver (`shs-cxi`). After
//! endpoint creation, sends touch no kernel or control-plane code — only
//! this crate and `shs-fabric` — which is the structural reason the
//! paper's communication-overhead figures (5-8) come out flat.
//!
//! Timing constants ([`CassiniParams`]) are calibrated to 200 Gb/s
//! Slingshot magnitudes; see EXPERIMENTS.md.

pub mod nic;
pub mod params;

pub use nic::{
    CassiniNic, Endpoint, EpIdx, MemoryRegion, MrKey, NicCounters, NicError, RxMessage,
    SendOutcome, SendTiming, ServiceEntry, SvcId, SvcLimits,
};
pub use params::CassiniParams;
