pub use slingshot_k8s as core_api;
