//! Vendored, network-free subset of the `criterion` API.
//!
//! Implements the pieces the `shs-bench` targets use — `Criterion`,
//! `benchmark_group`, `bench_function`, `Bencher::iter`,
//! `criterion_group!` (both plain and `name/config/targets` forms) and
//! `criterion_main!` — with a simple wall-clock measurement loop:
//! a short warmup, then `sample_size` samples of adaptively-batched
//! iterations, reporting min/mean/max ns per iteration to stdout.

use std::time::{Duration, Instant};

/// Measurement configuration and report sink.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion { sample_size: 10, measurement_time: Duration::from_secs(1) }
    }
}

impl Criterion {
    /// Number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Soft cap on total measurement wall-clock per benchmark.
    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    /// Parse CLI args. This stub accepts and ignores everything (cargo
    /// passes `--bench`, harness filters, etc.).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(self, &id.into(), f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }
}

/// A named collection of benchmarks sharing a prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Override samples for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    /// Override measurement time for this group.
    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    /// Run one benchmark inside the group.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(self.criterion, &full, f);
        self
    }

    /// Run one benchmark with an explicit input.
    pub fn bench_with_input<I, F>(&mut self, id: impl Into<String>, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(self.criterion, &full, |b| f(b, input));
        self
    }

    /// Close the group.
    pub fn finish(self) {}
}

/// Handed to benchmark closures; [`Bencher::iter`] times the hot loop.
pub struct Bencher {
    iters_per_sample: u64,
    samples: usize,
    budget: Duration,
    /// Collected per-iteration timings in ns, one entry per sample.
    results_ns: Vec<f64>,
}

impl Bencher {
    /// Time `routine`, called in batches across the configured samples.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let deadline = Instant::now() + self.budget;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..self.iters_per_sample {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            self.results_ns
                .push(elapsed.as_nanos() as f64 / self.iters_per_sample as f64);
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

fn run_bench<F: FnMut(&mut Bencher)>(c: &Criterion, id: &str, mut f: F) {
    let mut b = Bencher {
        iters_per_sample: 1,
        samples: c.sample_size,
        budget: c.measurement_time,
        results_ns: Vec::new(),
    };
    f(&mut b);
    if b.results_ns.is_empty() {
        println!("{id:50} (no samples)");
        return;
    }
    let n = b.results_ns.len() as f64;
    let mean = b.results_ns.iter().sum::<f64>() / n;
    let min = b.results_ns.iter().cloned().fold(f64::INFINITY, f64::min);
    let max = b.results_ns.iter().cloned().fold(0.0f64, f64::max);
    println!("{id:50} [min {min:>12.1} ns  mean {mean:>12.1} ns  max {max:>12.1} ns]");
}

/// Opaque-to-the-optimizer identity, re-exported for convenience.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Define a group runner function from benchmark target functions.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Define `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
