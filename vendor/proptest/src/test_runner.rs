//! The deterministic case runner: seeding, regression replay, reporting.

use std::fmt;
use std::path::{Path, PathBuf};

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test (regression seeds run extra).
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Why a test case did not pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TestCaseError {
    /// The property is violated.
    Fail(String),
    /// The inputs were unsuitable; the case is skipped, not failed.
    Reject(String),
}

impl TestCaseError {
    /// A failed case.
    pub fn fail<T: fmt::Display>(reason: T) -> Self {
        TestCaseError::Fail(reason.to_string())
    }

    /// A rejected (skipped) case.
    pub fn reject<T: fmt::Display>(reason: T) -> Self {
        TestCaseError::Reject(reason.to_string())
    }

    #[doc(hidden)]
    pub fn with_inputs(self, inputs: &str) -> Self {
        match self {
            TestCaseError::Fail(msg) => {
                TestCaseError::Fail(format!("{msg}\n  inputs: {inputs}"))
            }
            reject => reject,
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Fail(m) => write!(f, "{m}"),
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
        }
    }
}

/// Result of one property case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Deterministic splitmix64 RNG.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeded RNG.
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit draw.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // Multiply-shift keeps this unbiased enough for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

fn fnv1a(s: &str) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for b in s.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// `proptest-regressions/<test-file-stem>.txt` relative to the crate
/// under test, same layout as real proptest's persistence files.
fn regression_path(test_file: &str) -> Option<PathBuf> {
    let manifest_dir = std::env::var("CARGO_MANIFEST_DIR").ok()?;
    let stem = Path::new(test_file).file_stem()?.to_str()?.to_string();
    Some(
        Path::new(&manifest_dir)
            .join("proptest-regressions")
            .join(format!("{stem}.txt")),
    )
}

fn parse_seed(tok: &str) -> Option<u64> {
    let t = tok.trim();
    if let Some(hex) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        t.parse().ok()
    }
}

/// Committed regression seeds: lines of `cc <seed>`, `#` comments
/// ignored. Missing file means no extra seeds.
fn regression_seeds(test_file: &str) -> Vec<u64> {
    let Some(path) = regression_path(test_file) else {
        return Vec::new();
    };
    let Ok(text) = std::fs::read_to_string(&path) else {
        return Vec::new();
    };
    text.lines()
        .filter_map(|line| {
            let line = line.trim();
            let rest = line.strip_prefix("cc")?.trim();
            parse_seed(rest.split_whitespace().next()?)
        })
        .collect()
}

/// Run one property: regression seeds first, then `config.cases`
/// deterministically-derived seeds. Panics (failing the enclosing
/// `#[test]`) on the first `Fail`, reporting the seed for replay.
pub fn run(
    config: &ProptestConfig,
    test_file: &str,
    test_name: &str,
    mut case: impl FnMut(&mut TestRng) -> TestCaseResult,
) {
    let mut seeds = Vec::with_capacity(config.cases as usize + 2);
    if let Some(seed) = std::env::var("PROPTEST_SEED").ok().and_then(|s| parse_seed(&s)) {
        seeds.push((seed, "PROPTEST_SEED"));
    }
    let replayed = regression_seeds(test_file);
    let n_regressions = replayed.len();
    seeds.extend(replayed.into_iter().map(|s| (s, "regression file")));
    let base = fnv1a(test_name) ^ fnv1a(test_file);
    for i in 0..config.cases {
        // splitmix the case index so neighboring tests don't correlate.
        let mut mix = TestRng::new(base.wrapping_add(i as u64));
        seeds.push((mix.next_u64(), "generated"));
    }

    let mut rejected = 0u32;
    for (seed, origin) in seeds {
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => {}
            Err(TestCaseError::Reject(_)) => rejected += 1,
            Err(TestCaseError::Fail(msg)) => panic!(
                "[proptest] {test_name} failed (seed 0x{seed:016x}, from {origin}):\n{msg}\n\
                 replay: PROPTEST_SEED=0x{seed:016x} cargo test {test_name}\n\
                 pin:    echo 'cc 0x{seed:016x}' >> proptest-regressions/<test-file>.txt"
            ),
        }
    }
    if rejected > config.cases / 2 {
        panic!("[proptest] {test_name}: too many rejected cases ({rejected})");
    }
    let _ = n_regressions;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regression_file_seeds_parse_in_order() {
        // Reads the committed fixture proptest-regressions/smoke.txt
        // relative to this crate's CARGO_MANIFEST_DIR.
        let seeds = regression_seeds("src/smoke.rs");
        assert_eq!(seeds, vec![0xaa, 187, 0xdead_beef_0000_0001]);
    }

    #[test]
    fn runner_replays_regression_seeds_before_generated_cases() {
        let mut seen = Vec::new();
        run(
            &ProptestConfig::with_cases(3),
            "src/smoke.rs",
            "replay_order_probe",
            |rng| {
                seen.push(rng.clone());
                let _ = rng.next_u64();
                Ok(())
            },
        );
        // 3 replayed + 3 generated (PROPTEST_SEED unset in tests).
        assert_eq!(seen.len(), 6);
        let states: Vec<u64> = seen.iter().map(|r| r.state).collect();
        assert_eq!(&states[..3], &[0xaa, 187, 0xdead_beef_0000_0001]);
    }

    #[test]
    fn missing_regression_file_is_empty() {
        assert!(regression_seeds("src/no_such_test.rs").is_empty());
    }

    #[test]
    fn generated_seeds_are_deterministic_per_test_name() {
        let collect = |name: &str| {
            let mut s = Vec::new();
            run(&ProptestConfig::with_cases(4), "src/x.rs", name, |rng| {
                s.push(rng.state);
                Ok(())
            });
            s
        };
        assert_eq!(collect("alpha"), collect("alpha"), "same test, same seeds");
        assert_ne!(collect("alpha"), collect("beta"), "names decorrelate seeds");
    }
}
