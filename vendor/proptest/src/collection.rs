//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// A length range for generated collections.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    /// Inclusive lower bound.
    pub min: usize,
    /// Exclusive upper bound.
    pub max: usize,
}

impl SizeRange {
    fn pick(&self, rng: &mut TestRng) -> usize {
        assert!(self.min < self.max, "empty collection size range");
        self.min + rng.below((self.max - self.min) as u64) as usize
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange { min: n, max: n + 1 }
    }
}

impl From<core::ops::Range<usize>> for SizeRange {
    fn from(r: core::ops::Range<usize>) -> Self {
        SizeRange { min: r.start, max: r.end }
    }
}

impl From<core::ops::RangeInclusive<usize>> for SizeRange {
    fn from(r: core::ops::RangeInclusive<usize>) -> Self {
        SizeRange { min: *r.start(), max: *r.end() + 1 }
    }
}

/// Strategy producing `Vec`s of an element strategy's values.
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

/// `Vec` strategy with lengths drawn from `size`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        let len = self.size.pick(rng);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
