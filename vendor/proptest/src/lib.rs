//! Vendored, network-free subset of the `proptest` API.
//!
//! Implements the surface this workspace uses — `proptest!`,
//! `prop_oneof!`, `prop_assert*!`, `Strategy`/`prop_map`, `Just`,
//! `any::<T>()`, integer-range strategies, tuple strategies and
//! `prop::collection::vec` — over a deterministic splitmix64 RNG, so CI
//! runs are reproducible by construction:
//!
//! * case seeds derive from the test's name and case index only;
//! * `proptest-regressions/<file>.txt` files next to a test's crate are
//!   replayed first (lines of `cc 0x<seed>`), mirroring real proptest's
//!   regression-persistence workflow;
//! * `PROPTEST_SEED=0x<hex>` prepends one extra seed for ad-hoc replay.
//!
//! No shrinking is performed: failures report the seed and the generated
//! inputs instead, and committing the seed pins the case forever.

pub mod collection;
pub mod strategy;
pub mod test_runner;

pub use strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy, Union};
pub use test_runner::{ProptestConfig, TestCaseError, TestCaseResult, TestRng};

/// The customary glob-import module.
pub mod prelude {
    pub use crate as prop;
    pub use crate::strategy::{any, Arbitrary, BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestCaseResult};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Weighted or unweighted choice between strategies producing one value
/// type.
#[macro_export]
macro_rules! prop_oneof {
    ($($weight:expr => $strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(($weight as u32, $crate::strategy::box_strategy($strat))),+
        ])
    };
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $((1u32, $crate::strategy::box_strategy($strat))),+
        ])
    };
}

/// Fallible assertion: fails the current case (with the generated
/// inputs attached) instead of panicking outright.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", ::core::stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                ::std::format!($($fmt)+),
            ));
        }
    };
}

/// Equality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            ::core::stringify!($left), ::core::stringify!($right), __l, __r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l == *__r,
            "{}\n  left: {:?}\n right: {:?}",
            ::std::format!($($fmt)+), __l, __r
        );
    }};
}

/// Inequality assertion variant of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            ::core::stringify!($left), ::core::stringify!($right), __l
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__l, __r) = (&$left, &$right);
        $crate::prop_assert!(
            *__l != *__r,
            "{}\n  both: {:?}",
            ::std::format!($($fmt)+), __l
        );
    }};
}

/// Define property tests. Accepts an optional leading
/// `#![proptest_config(expr)]` followed by any number of
/// `fn name(arg in strategy, ...) { body }` items carrying ordinary
/// attributes (`#[test]`, doc comments).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($config); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { cfg = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (cfg = ($config:expr);) => {};
    (cfg = ($config:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $config;
            $crate::test_runner::run(&__config, ::core::file!(), ::core::stringify!($name), |__rng| {
                $(let $arg = $crate::strategy::Strategy::generate(&($strat), __rng);)+
                let __inputs = ::std::format!(
                    ::core::concat!($(::core::stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let __result: $crate::TestCaseResult =
                    (move || { $body ::core::result::Result::Ok(()) })();
                __result.map_err(|__e| __e.with_inputs(&__inputs))
            });
        }
        $crate::__proptest_items! { cfg = ($config); $($rest)* }
    };
}
