//! Strategies: deterministic value generators.

use crate::test_runner::TestRng;

/// A generator of values of one type. Unlike real proptest there is no
/// value tree / shrinking: a strategy draws a value directly from the
/// deterministic RNG, and failures are reproduced by replaying seeds.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { base: self, f }
    }

    /// Keep only values satisfying `pred` (bounded retry).
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { base: self, pred, whence }
    }

    /// Generate a value, then a second strategy from it.
    fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
        S2: Strategy,
        F: Fn(Self::Value) -> S2,
    {
        FlatMap { base: self, f }
    }

    /// Type-erase this strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A type-erased strategy.
pub type BoxedStrategy<V> = Box<dyn Strategy<Value = V>>;

/// Box a strategy (used by `prop_oneof!` so all arms unify).
pub fn box_strategy<S: Strategy + 'static>(s: S) -> BoxedStrategy<S::Value> {
    Box::new(s)
}

impl<V> Strategy for BoxedStrategy<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        (**self).generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.base.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    base: S,
    pred: F,
    whence: &'static str,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.base.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter `{}` rejected 1000 consecutive values", self.whence);
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    base: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.base.generate(rng)).generate(rng)
    }
}

/// Weighted union of boxed strategies (`prop_oneof!`).
pub struct Union<V> {
    arms: Vec<(u32, BoxedStrategy<V>)>,
    total: u64,
}

impl<V> Union<V> {
    pub fn new(arms: Vec<(u32, BoxedStrategy<V>)>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        let total = arms.iter().map(|(w, _)| *w as u64).sum();
        assert!(total > 0, "prop_oneof! weights sum to zero");
        Union { arms, total }
    }
}

impl<V> Strategy for Union<V> {
    type Value = V;
    fn generate(&self, rng: &mut TestRng) -> V {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weighted pick out of range")
    }
}

/// Types with a canonical full-range strategy (`any::<T>()`).
pub trait Arbitrary: Sized {
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The canonical strategy for `T`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T>(std::marker::PhantomData<T>);

/// Full-range strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! arb_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
arb_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        // Printable ASCII keeps failure reports readable.
        (0x20 + rng.below(0x5f) as u8) as char
    }
}

macro_rules! range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + rng.below(span) as i128) as $t
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as i128, *self.end() as i128);
                assert!(lo <= hi, "empty range strategy");
                let span = (hi - lo + 1) as u64; // never 0: callers stay below full u64
                (lo + rng.below(span) as i128) as $t
            }
        }
    )*};
}
range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($(($($name:ident / $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy! {
    (A / 0)
    (A / 0, B / 1)
    (A / 0, B / 1, C / 2)
    (A / 0, B / 1, C / 2, D / 3)
    (A / 0, B / 1, C / 2, D / 3, E / 4)
    (A / 0, B / 1, C / 2, D / 3, E / 4, F / 5)
}
