//! Vendored `#[derive(Serialize)]` / `#[derive(Deserialize)]`.
//!
//! The workspace builds offline, so `syn`/`quote` are unavailable; this
//! crate parses the derive input token stream by hand. It supports the
//! shapes used in this repository: structs with named fields, tuple
//! structs, and enums with unit / newtype / tuple / struct variants,
//! plus the field attributes `#[serde(default)]`,
//! `#[serde(default = "path")]`, `#[serde(rename = "name")]`,
//! `#[serde(skip_serializing_if = "path")]` (the key is omitted when
//! `path(&field)` is true; pair with `default` if the type also derives
//! `Deserialize`) and `#[serde(flatten)]` (flatten is map-typed
//! catch-all only, as in the CNI spec types). Generated impls target
//! the value-tree model of the vendored `serde` crate.

use proc_macro::{Delimiter, TokenStream, TokenTree};

// ---------------------------------------------------------------------------
// Input model
// ---------------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq)]
enum DefaultKind {
    /// Field required; absent keys go through `Deserialize::absent_field`.
    Required,
    /// `#[serde(default)]` — `Default::default()`.
    Std,
    /// `#[serde(default = "path")]` — call `path()`.
    Path(String),
}

#[derive(Debug, Clone)]
struct Field {
    /// Rust identifier, possibly raw (`r#virtual`).
    ident: String,
    /// JSON key (rename or ident with any `r#` stripped).
    key: String,
    default: DefaultKind,
    flatten: bool,
    /// `#[serde(skip_serializing_if = "path")]` — omit the key when
    /// `path(&field)` returns true.
    skip_if: Option<String>,
}

#[derive(Debug, Clone)]
enum Fields {
    Named(Vec<Field>),
    Unnamed(usize),
    Unit,
}

#[derive(Debug, Clone)]
struct Variant {
    ident: String,
    key: String,
    fields: Fields,
}

#[derive(Debug)]
enum Input {
    Struct { name: String, fields: Fields },
    Enum { name: String, variants: Vec<Variant> },
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

struct Cursor {
    toks: Vec<TokenTree>,
    pos: usize,
}

impl Cursor {
    fn new(ts: TokenStream) -> Self {
        Cursor { toks: ts.into_iter().collect(), pos: 0 }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let t = self.toks.get(self.pos).cloned();
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek_punct(&self, c: char) -> bool {
        matches!(self.peek(), Some(TokenTree::Punct(p)) if p.as_char() == c)
    }

    fn peek_ident(&self, s: &str) -> bool {
        matches!(self.peek(), Some(TokenTree::Ident(i)) if i.to_string() == s)
    }

    /// Consume `#[...]` attributes, returning serde-attribute token groups.
    fn attrs(&mut self) -> Vec<TokenStream> {
        let mut serde_attrs = Vec::new();
        while self.peek_punct('#') {
            self.next(); // '#'
            // Inner attribute `#!` cannot appear here; expect the bracket group.
            if let Some(TokenTree::Group(g)) = self.next() {
                let mut inner = Cursor::new(g.stream());
                if inner.peek_ident("serde") {
                    inner.next();
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        serde_attrs.push(args.stream());
                    }
                }
            }
        }
        serde_attrs
    }

    /// Consume an optional `pub` / `pub(...)` visibility.
    fn visibility(&mut self) {
        if self.peek_ident("pub") {
            self.next();
            if let Some(TokenTree::Group(g)) = self.peek() {
                if g.delimiter() == Delimiter::Parenthesis {
                    self.next();
                }
            }
        }
    }

    /// Skip a `<...>` generics list if present (angle-depth counted).
    fn skip_generics(&mut self) {
        if !self.peek_punct('<') {
            return;
        }
        let mut depth = 0i32;
        while let Some(t) = self.next() {
            if let TokenTree::Punct(p) = &t {
                match p.as_char() {
                    '<' => depth += 1,
                    '>' => {
                        depth -= 1;
                        if depth == 0 {
                            return;
                        }
                    }
                    _ => {}
                }
            }
        }
    }

    /// Skip a field's type up to a top-level comma (angle-depth aware).
    fn skip_type(&mut self) {
        let mut depth = 0i32;
        while let Some(t) = self.peek() {
            match t {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => return,
                _ => {}
            }
            self.next();
        }
    }
}

fn parse_serde_attr(attr: TokenStream, field: &mut Field) {
    let mut c = Cursor::new(attr);
    while let Some(t) = c.next() {
        let TokenTree::Ident(id) = t else { continue };
        match id.to_string().as_str() {
            "default" => {
                if c.peek_punct('=') {
                    c.next();
                    if let Some(TokenTree::Literal(lit)) = c.next() {
                        field.default = DefaultKind::Path(unquote(&lit.to_string()));
                    }
                } else {
                    field.default = DefaultKind::Std;
                }
            }
            "rename" if c.peek_punct('=') => {
                c.next();
                if let Some(TokenTree::Literal(lit)) = c.next() {
                    field.key = unquote(&lit.to_string());
                }
            }
            "skip_serializing_if" if c.peek_punct('=') => {
                c.next();
                if let Some(TokenTree::Literal(lit)) = c.next() {
                    field.skip_if = Some(unquote(&lit.to_string()));
                }
            }
            "flatten" => field.flatten = true,
            // Unknown serde attributes are ignored rather than rejected:
            // the repo only uses the five above.
            _ => {}
        }
    }
}

fn unquote(lit: &str) -> String {
    lit.trim_matches('"').to_string()
}

fn json_key_of(ident: &str) -> String {
    ident.strip_prefix("r#").unwrap_or(ident).to_string()
}

/// Parse the contents of a `{ ... }` named-field list.
fn parse_named_fields(body: TokenStream) -> Vec<Field> {
    let mut c = Cursor::new(body);
    let mut fields = Vec::new();
    while !c.at_end() {
        let attrs = c.attrs();
        if c.at_end() {
            break;
        }
        c.visibility();
        let Some(TokenTree::Ident(name)) = c.next() else { break };
        // ':' then the type.
        if c.peek_punct(':') {
            c.next();
        }
        c.skip_type();
        if c.peek_punct(',') {
            c.next();
        }
        let ident = name.to_string();
        let mut field = Field {
            key: json_key_of(&ident),
            ident,
            default: DefaultKind::Required,
            flatten: false,
            skip_if: None,
        };
        for a in attrs {
            parse_serde_attr(a, &mut field);
        }
        fields.push(field);
    }
    fields
}

/// Count top-level comma-separated entries of a `( ... )` tuple list.
fn count_tuple_fields(body: TokenStream) -> usize {
    let mut c = Cursor::new(body);
    if c.at_end() {
        return 0;
    }
    let mut n = 1;
    let mut depth = 0i32;
    while let Some(t) = c.next() {
        if let TokenTree::Punct(p) = &t {
            match p.as_char() {
                '<' => depth += 1,
                '>' => depth -= 1,
                ',' if depth == 0 && !c.at_end() => n += 1,
                _ => {}
            }
        }
    }
    n
}

fn parse_variants(body: TokenStream) -> Vec<Variant> {
    let mut c = Cursor::new(body);
    let mut variants = Vec::new();
    while !c.at_end() {
        let _attrs = c.attrs();
        if c.at_end() {
            break;
        }
        let Some(TokenTree::Ident(name)) = c.next() else { break };
        let fields = match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let f = Fields::Named(parse_named_fields(g.stream()));
                c.next();
                f
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let f = Fields::Unnamed(count_tuple_fields(g.stream()));
                c.next();
                f
            }
            _ => Fields::Unit,
        };
        // Skip a `= discr` if present, then the separating comma.
        while !c.at_end() && !c.peek_punct(',') {
            c.next();
        }
        if c.peek_punct(',') {
            c.next();
        }
        let ident = name.to_string();
        variants.push(Variant { key: json_key_of(&ident), ident, fields });
    }
    variants
}

fn parse_input(ts: TokenStream) -> Input {
    let mut c = Cursor::new(ts);
    let _ = c.attrs();
    c.visibility();
    let kw = loop {
        match c.next() {
            Some(TokenTree::Ident(i)) => {
                let s = i.to_string();
                if s == "struct" || s == "enum" {
                    break s;
                }
            }
            Some(_) => {}
            None => panic!("serde_derive: expected `struct` or `enum`"),
        }
    };
    let Some(TokenTree::Ident(name)) = c.next() else {
        panic!("serde_derive: expected type name");
    };
    let name = name.to_string();
    c.skip_generics();
    // Skip a `where` clause if present (scan forward to the body group).
    if kw == "struct" {
        match c.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = Fields::Named(parse_named_fields(g.stream()));
                Input::Struct { name, fields }
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let fields = Fields::Unnamed(count_tuple_fields(g.stream()));
                Input::Struct { name, fields }
            }
            _ => Input::Struct { name, fields: Fields::Unit },
        }
    } else {
        // Advance to the brace body (skips any where clause tokens).
        loop {
            match c.peek() {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    let variants = parse_variants(g.stream());
                    return Input::Enum { name, variants };
                }
                Some(_) => {
                    c.next();
                }
                None => panic!("serde_derive: enum `{name}` has no body"),
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Codegen
// ---------------------------------------------------------------------------

fn ser_named_fields(out: &mut String, fields: &[Field], access: &dyn Fn(&Field) -> String) {
    out.push_str("let mut __m = ::serde::Map::new();\n");
    for f in fields {
        let a = access(f);
        if f.flatten {
            out.push_str(&format!(
                "if let ::serde::Value::Object(__o) = ::serde::Serialize::to_json_value(&{a}) {{ \
                 for (__k, __val) in __o {{ __m.insert(__k, __val); }} }}\n"
            ));
        } else if let Some(skip) = &f.skip_if {
            out.push_str(&format!(
                "if !{skip}(&{a}) {{ \
                 __m.insert(::std::string::String::from(\"{key}\"), \
                 ::serde::Serialize::to_json_value(&{a})); }}\n",
                key = f.key
            ));
        } else {
            out.push_str(&format!(
                "__m.insert(::std::string::String::from(\"{key}\"), \
                 ::serde::Serialize::to_json_value(&{a}));\n",
                key = f.key
            ));
        }
    }
    out.push_str("::serde::Value::Object(__m)\n");
}

fn de_named_fields(out: &mut String, type_path: &str, obj: &str, fields: &[Field]) {
    let known: Vec<String> = fields
        .iter()
        .filter(|f| !f.flatten)
        .map(|f| format!("\"{}\"", f.key))
        .collect();
    let known = known.join(", ");
    out.push_str(&format!("{type_path} {{\n"));
    for f in fields {
        if f.flatten {
            out.push_str(&format!(
                "{ident}: {{ let mut __rest = ::serde::Map::new();\n\
                 for (__k, __val) in {obj}.iter() {{\n\
                     if ![{known}].contains(&__k.as_str()) {{ __rest.insert(__k.clone(), __val.clone()); }}\n\
                 }}\n\
                 ::serde::Deserialize::from_json_value(&::serde::Value::Object(__rest))? }},\n",
                ident = f.ident
            ));
            continue;
        }
        let absent = match &f.default {
            DefaultKind::Required => {
                format!("::serde::Deserialize::absent_field(\"{}\")?", f.key)
            }
            DefaultKind::Std => "::core::default::Default::default()".to_string(),
            DefaultKind::Path(p) => format!("{p}()"),
        };
        out.push_str(&format!(
            "{ident}: match {obj}.get(\"{key}\") {{\n\
                 ::core::option::Option::Some(__f) => ::serde::Deserialize::from_json_value(__f)?,\n\
                 ::core::option::Option::None => {absent},\n\
             }},\n",
            ident = f.ident,
            key = f.key
        ));
    }
    out.push_str("}\n");
}

fn generate_serialize(input: &Input) -> String {
    let mut body = String::new();
    let name = match input {
        Input::Struct { name, fields } => {
            match fields {
                Fields::Named(fs) => {
                    ser_named_fields(&mut body, fs, &|f| format!("self.{}", f.ident));
                }
                Fields::Unnamed(1) => {
                    body.push_str("::serde::Serialize::to_json_value(&self.0)\n");
                }
                Fields::Unnamed(n) => {
                    body.push_str("::serde::Value::Array(vec![\n");
                    for i in 0..*n {
                        body.push_str(&format!("::serde::Serialize::to_json_value(&self.{i}),\n"));
                    }
                    body.push_str("])\n");
                }
                Fields::Unit => body.push_str("::serde::Value::Null\n"),
            }
            name
        }
        Input::Enum { name, variants } => {
            body.push_str("match self {\n");
            for v in variants {
                match &v.fields {
                    Fields::Unit => body.push_str(&format!(
                        "{name}::{vid} => ::serde::Value::String(::std::string::String::from(\"{key}\")),\n",
                        vid = v.ident,
                        key = v.key
                    )),
                    Fields::Unnamed(1) => body.push_str(&format!(
                        "{name}::{vid}(__f0) => {{\n\
                             let mut __outer = ::serde::Map::new();\n\
                             __outer.insert(::std::string::String::from(\"{key}\"), \
                                 ::serde::Serialize::to_json_value(__f0));\n\
                             ::serde::Value::Object(__outer)\n\
                         }}\n",
                        vid = v.ident,
                        key = v.key
                    )),
                    Fields::Unnamed(n) => {
                        let binders: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        body.push_str(&format!(
                            "{name}::{vid}({binds}) => {{\n\
                                 let mut __outer = ::serde::Map::new();\n\
                                 __outer.insert(::std::string::String::from(\"{key}\"), \
                                     ::serde::Value::Array(vec![{elems}]));\n\
                                 ::serde::Value::Object(__outer)\n\
                             }}\n",
                            vid = v.ident,
                            key = v.key,
                            binds = binders.join(", "),
                            elems = binders
                                .iter()
                                .map(|b| format!("::serde::Serialize::to_json_value({b})"))
                                .collect::<Vec<_>>()
                                .join(", ")
                        ));
                    }
                    Fields::Named(fs) => {
                        let binders: Vec<String> = fs.iter().map(|f| f.ident.clone()).collect();
                        let mut inner = String::new();
                        ser_named_fields(&mut inner, fs, &|f| f.ident.clone());
                        body.push_str(&format!(
                            "{name}::{vid} {{ {binds} }} => {{\n\
                                 let __inner = {{ {inner} }};\n\
                                 let mut __outer = ::serde::Map::new();\n\
                                 __outer.insert(::std::string::String::from(\"{key}\"), __inner);\n\
                                 ::serde::Value::Object(__outer)\n\
                             }}\n",
                            vid = v.ident,
                            key = v.key,
                            binds = binders.join(", ")
                        ));
                    }
                }
            }
            body.push_str("}\n");
            name
        }
    };
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_json_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
         }}\n"
    )
}

fn generate_deserialize(input: &Input) -> String {
    let mut body = String::new();
    let name = match input {
        Input::Struct { name, fields } => {
            match fields {
                Fields::Named(fs) => {
                    body.push_str(&format!(
                        "let __obj = __v.as_object().ok_or_else(|| \
                         ::serde::Error::custom(\"expected object for {name}\"))?;\n\
                         ::core::result::Result::Ok("
                    ));
                    de_named_fields(&mut body, name, "__obj", fs);
                    body.push_str(")\n");
                }
                Fields::Unnamed(1) => {
                    body.push_str(&format!(
                        "::core::result::Result::Ok({name}(::serde::Deserialize::from_json_value(__v)?))\n"
                    ));
                }
                Fields::Unnamed(n) => {
                    body.push_str(&format!(
                        "let __arr = __v.as_array().ok_or_else(|| \
                         ::serde::Error::custom(\"expected array for {name}\"))?;\n\
                         if __arr.len() != {n} {{ return ::core::result::Result::Err(\
                         ::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n\
                         ::core::result::Result::Ok({name}(\n"
                    ));
                    for i in 0..*n {
                        body.push_str(&format!(
                            "::serde::Deserialize::from_json_value(&__arr[{i}])?,\n"
                        ));
                    }
                    body.push_str("))\n");
                }
                Fields::Unit => {
                    body.push_str(&format!("::core::result::Result::Ok({name})\n"));
                }
            }
            name
        }
        Input::Enum { name, variants } => {
            // Externally-tagged representation, as real serde defaults to.
            body.push_str("match __v {\n::serde::Value::String(__s) => match __s.as_str() {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    body.push_str(&format!(
                        "\"{key}\" => ::core::result::Result::Ok({name}::{vid}),\n",
                        key = v.key,
                        vid = v.ident
                    ));
                }
            }
            body.push_str(&format!(
                "__other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n}},\n"
            ));
            body.push_str(
                "::serde::Value::Object(__o) if __o.len() == 1 => {\n\
                 let (__k, __inner) = __o.iter().next().unwrap();\n\
                 match __k.as_str() {\n",
            );
            for v in variants {
                match &v.fields {
                    Fields::Unit => body.push_str(&format!(
                        "\"{key}\" => ::core::result::Result::Ok({name}::{vid}),\n",
                        key = v.key,
                        vid = v.ident
                    )),
                    Fields::Unnamed(1) => body.push_str(&format!(
                        "\"{key}\" => ::core::result::Result::Ok({name}::{vid}(\
                         ::serde::Deserialize::from_json_value(__inner)?)),\n",
                        key = v.key,
                        vid = v.ident
                    )),
                    Fields::Unnamed(n) => {
                        body.push_str(&format!(
                            "\"{key}\" => {{\n\
                             let __arr = __inner.as_array().ok_or_else(|| \
                             ::serde::Error::custom(\"expected array for {name}::{vid}\"))?;\n\
                             if __arr.len() != {n} {{ return ::core::result::Result::Err(\
                             ::serde::Error::custom(\"wrong tuple arity for {name}::{vid}\")); }}\n\
                             ::core::result::Result::Ok({name}::{vid}(\n",
                            key = v.key,
                            vid = v.ident
                        ));
                        for i in 0..*n {
                            body.push_str(&format!(
                                "::serde::Deserialize::from_json_value(&__arr[{i}])?,\n"
                            ));
                        }
                        body.push_str("))\n}\n");
                    }
                    Fields::Named(fs) => {
                        body.push_str(&format!(
                            "\"{key}\" => {{\n\
                             let __vobj = __inner.as_object().ok_or_else(|| \
                             ::serde::Error::custom(\"expected object for {name}::{vid}\"))?;\n\
                             ::core::result::Result::Ok(",
                            key = v.key,
                            vid = v.ident
                        ));
                        de_named_fields(&mut body, &format!("{name}::{}", v.ident), "__vobj", fs);
                        body.push_str(")\n}\n");
                    }
                }
            }
            body.push_str(&format!(
                "__other => ::core::result::Result::Err(::serde::Error::custom(\
                 format!(\"unknown variant `{{__other}}` of {name}\"))),\n}}\n}},\n"
            ));
            body.push_str(&format!(
                "_ => ::core::result::Result::Err(::serde::Error::custom(\
                 \"expected string or single-key object for enum {name}\")),\n}}\n"
            ));
            name
        }
    };
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_json_value(__v: &::serde::Value) -> \
                 ::core::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
         }}\n"
    )
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_serialize(&parsed)
        .parse()
        .expect("serde_derive: generated Serialize impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let parsed = parse_input(input);
    generate_deserialize(&parsed)
        .parse()
        .expect("serde_derive: generated Deserialize impl parses")
}
