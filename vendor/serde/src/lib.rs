//! Vendored, network-free subset of the `serde` API.
//!
//! This workspace builds fully offline, so the real serde cannot be
//! fetched. Every consumer here serializes through `serde_json`, which
//! lets us collapse serde's format-generic architecture into a single
//! value-tree model: [`Serialize`] renders into [`Value`], and
//! [`Deserialize`] reads back out of it. The `derive` feature re-exports
//! the companion proc-macros from `serde_derive`, which understand the
//! `#[serde(default)]`, `#[serde(default = "path")]`, `#[serde(rename)]`
//! and `#[serde(flatten)]` attributes used in this repository.

pub mod json;
pub mod value;

pub use value::{Map, Number, Value};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Serialization/deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Build an error from a message.
    pub fn custom<T: fmt::Display>(msg: T) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// A type renderable into a JSON [`Value`].
pub trait Serialize {
    /// Render `self` as a value tree.
    fn to_json_value(&self) -> Value;
}

/// A type reconstructible from a JSON [`Value`].
pub trait Deserialize: Sized {
    /// Reconstruct from a value tree.
    fn from_json_value(v: &Value) -> Result<Self, Error>;

    /// Called by derived struct impls when a field key is absent and no
    /// `#[serde(default)]` applies. `Option<T>` overrides this to yield
    /// `None`, matching real serde's implicit-optional behavior.
    fn absent_field(field: &str) -> Result<Self, Error> {
        Err(Error::custom(format!("missing field `{field}`")))
    }
}

/// `serde::ser` namespace (trait re-export for path compatibility).
pub mod ser {
    pub use crate::{Error, Serialize};
}

/// `serde::de` namespace: [`DeserializeOwned`](de::DeserializeOwned)
/// and the trait re-export.
pub mod de {
    pub use crate::{Deserialize, Error};

    /// Marker for deserializable types without borrowed data. Our
    /// `Deserialize` never borrows, so this is a blanket alias.
    pub trait DeserializeOwned: Deserialize {}
    impl<T: Deserialize> DeserializeOwned for T {}
}

// ---------------------------------------------------------------------------
// Serialize impls
// ---------------------------------------------------------------------------

impl Serialize for Value {
    fn to_json_value(&self) -> Value {
        self.clone()
    }
}

impl Serialize for bool {
    fn to_json_value(&self) -> Value {
        Value::Bool(*self)
    }
}

macro_rules! ser_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                Value::Number(Number::U(*self as u64))
            }
        }
    )*};
}
ser_uint!(u8, u16, u32, u64, usize);

macro_rules! ser_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_json_value(&self) -> Value {
                let v = *self as i64;
                if v >= 0 {
                    Value::Number(Number::U(v as u64))
                } else {
                    Value::Number(Number::I(v))
                }
            }
        }
    )*};
}
ser_int!(i8, i16, i32, i64, isize);

impl Serialize for f32 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F(*self as f64))
    }
}

impl Serialize for f64 {
    fn to_json_value(&self) -> Value {
        Value::Number(Number::F(*self))
    }
}

impl Serialize for str {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl Serialize for String {
    fn to_json_value(&self) -> Value {
        Value::String(self.clone())
    }
}

impl Serialize for char {
    fn to_json_value(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for &mut T {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_json_value(&self) -> Value {
        (**self).to_json_value()
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_json_value(&self) -> Value {
        match self {
            Some(v) => v.to_json_value(),
            None => Value::Null,
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_json_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_json_value).collect())
    }
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_json_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_json_value()))
                .collect(),
        )
    }
}

// ---------------------------------------------------------------------------
// Deserialize impls
// ---------------------------------------------------------------------------

impl Deserialize for Value {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

impl Deserialize for bool {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_bool()
            .ok_or_else(|| Error::custom(format!("expected bool, found {v}")))
    }
}

macro_rules! de_uint {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_u64()
                    .ok_or_else(|| Error::custom(format!("expected unsigned integer, found {v}")))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_uint!(u8, u16, u32, u64, usize);

macro_rules! de_int {
    ($($t:ty),*) => {$(
        impl Deserialize for $t {
            fn from_json_value(v: &Value) -> Result<Self, Error> {
                let n = v
                    .as_i64()
                    .ok_or_else(|| Error::custom(format!("expected integer, found {v}")))?;
                <$t>::try_from(n).map_err(|_| {
                    Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_int!(i8, i16, i32, i64, isize);

impl Deserialize for f32 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        Ok(f64::from_json_value(v)? as f32)
    }
}

impl Deserialize for f64 {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .ok_or_else(|| Error::custom(format!("expected number, found {v}")))
    }
}

impl Deserialize for String {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, found {v}")))
    }
}

impl Deserialize for char {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        let s = String::from_json_value(v)?;
        let mut chars = s.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_json_value(other).map(Some),
        }
    }

    fn absent_field(_field: &str) -> Result<Self, Error> {
        Ok(None)
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_array()
            .ok_or_else(|| Error::custom(format!("expected array, found {v}")))?
            .iter()
            .map(T::from_json_value)
            .collect()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        T::from_json_value(v).map(Box::new)
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {v}")))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_json_value(val)?)))
            .collect()
    }
}

impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_json_value(v: &Value) -> Result<Self, Error> {
        v.as_object()
            .ok_or_else(|| Error::custom(format!("expected object, found {v}")))?
            .iter()
            .map(|(k, val)| Ok((k.clone(), V::from_json_value(val)?)))
            .collect()
    }
}
