//! The JSON value tree this vendored serde serializes through.
//!
//! The real serde is format-agnostic; every consumer in this workspace
//! goes through `serde_json`, so a single in-memory `Value` is the only
//! data model we need. `serde_json` re-exports these types.

use std::collections::BTreeMap;
use std::fmt;

/// Object representation. `BTreeMap` keeps key order deterministic,
/// which the simulation relies on for reproducible byte images.
pub type Map = BTreeMap<String, Value>;

/// A JSON number. Integers are kept exact; equality is numeric across
/// variants so `json!(1)` compares equal regardless of how it was built.
#[derive(Debug, Clone, Copy)]
pub enum Number {
    /// Unsigned integer.
    U(u64),
    /// Signed (negative) integer.
    I(i64),
    /// Floating point.
    F(f64),
}

impl Number {
    pub fn as_u64(&self) -> Option<u64> {
        match *self {
            Number::U(n) => Some(n),
            Number::I(n) => u64::try_from(n).ok(),
            Number::F(f) if f >= 0.0 && f.fract() == 0.0 && f <= u64::MAX as f64 => Some(f as u64),
            Number::F(_) => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match *self {
            Number::U(n) => i64::try_from(n).ok(),
            Number::I(n) => Some(n),
            Number::F(f) if f.fract() == 0.0 && f >= i64::MIN as f64 && f <= i64::MAX as f64 => {
                Some(f as i64)
            }
            Number::F(_) => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match *self {
            Number::U(n) => Some(n as f64),
            Number::I(n) => Some(n as f64),
            Number::F(f) => Some(f),
        }
    }
}

impl PartialEq for Number {
    fn eq(&self, other: &Self) -> bool {
        match (self.as_i64(), other.as_i64()) {
            (Some(a), Some(b)) => return a == b,
            (None, None) => {}
            _ => {
                if let (Some(a), Some(b)) = (self.as_u64(), other.as_u64()) {
                    return a == b;
                }
            }
        }
        match (self.as_u64(), other.as_u64()) {
            (Some(a), Some(b)) => a == b,
            _ => self.as_f64() == other.as_f64(),
        }
    }
}

impl fmt::Display for Number {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            Number::U(n) => write!(f, "{n}"),
            Number::I(n) => write!(f, "{n}"),
            Number::F(n) => write!(f, "{n}"),
        }
    }
}

/// A JSON value.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number.
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object with deterministic (sorted) key order.
    Object(Map),
}

static NULL: Value = Value::Null;

impl Value {
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) => n.as_u64(),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n) => n.as_i64(),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => n.as_f64(),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_array_mut(&mut self) -> Option<&mut Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    pub fn as_object_mut(&mut self) -> Option<&mut Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object-key or array-index lookup; `None` on kind mismatch.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

/// Index types usable with [`Value::get`] and `value[...]`.
pub trait ValueIndex {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value>;

    /// Mutable access for `value[...] = x`. String keys auto-vivify:
    /// indexing `Null` turns it into an object, and missing keys are
    /// inserted as `Null` — matching serde_json's `IndexMut`.
    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value;
}

impl ValueIndex for str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_object().and_then(|m| m.get(self))
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        if v.is_null() {
            *v = Value::Object(Map::new());
        }
        match v {
            Value::Object(m) => m.entry(self.to_string()).or_insert(Value::Null),
            other => panic!("cannot index {other} with string key \"{self}\""),
        }
    }
}

impl ValueIndex for &str {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        (*self).index_into(v)
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        (*self).index_into_mut(v)
    }
}

impl ValueIndex for String {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        self.as_str().index_into(v)
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        self.as_str().index_into_mut(v)
    }
}

impl ValueIndex for usize {
    fn index_into<'v>(&self, v: &'v Value) -> Option<&'v Value> {
        v.as_array().and_then(|a| a.get(*self))
    }

    fn index_into_mut<'v>(&self, v: &'v mut Value) -> &'v mut Value {
        match v {
            Value::Array(a) => a
                .get_mut(*self)
                .unwrap_or_else(|| panic!("array index {self} out of bounds")),
            other => panic!("cannot index {other} with array index {self}"),
        }
    }
}

impl<I: ValueIndex> std::ops::Index<I> for Value {
    type Output = Value;
    fn index(&self, index: I) -> &Value {
        index.index_into(self).unwrap_or(&NULL)
    }
}

impl<I: ValueIndex> std::ops::IndexMut<I> for Value {
    fn index_mut(&mut self, index: I) -> &mut Value {
        index.index_into_mut(self)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::json::to_string_value(self))
    }
}
