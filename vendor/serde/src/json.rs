//! JSON text encoding and decoding for [`Value`].

use crate::value::{Map, Number, Value};
use crate::Error;

/// Serialize a value tree to compact JSON text.
pub fn to_string_value(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v);
    out
}

/// Render a value as human-readable JSON, two-space indented. Object
/// keys come out in `Map`'s (BTree) order, so output is deterministic.
pub fn to_string_value_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value_pretty(&mut out, v, 0);
    out
}

fn write_value_pretty(out: &mut String, v: &Value, depth: usize) {
    match v {
        Value::Array(items) if !items.is_empty() => {
            out.push_str("[\n");
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                write_value_pretty(out, item, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push(']');
        }
        Value::Object(map) if !map.is_empty() => {
            out.push_str("{\n");
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push_str(",\n");
                }
                push_indent(out, depth + 1);
                write_string(out, k);
                out.push_str(": ");
                write_value_pretty(out, val, depth + 1);
            }
            out.push('\n');
            push_indent(out, depth);
            out.push('}');
        }
        other => write_value(out, other),
    }
}

fn push_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_value(out: &mut String, v: &Value) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => out.push_str(&n.to_string()),
        Value::String(s) => write_string(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(out, item);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(out, k);
                out.push(':');
                write_value(out, val);
            }
            out.push('}');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parse JSON text into a value tree.
pub fn parse_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::custom(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Result<u8, Error> {
        let b = self
            .peek()
            .ok_or_else(|| Error::custom("unexpected end of JSON input"))?;
        self.pos += 1;
        Ok(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, lit: &str) -> Result<(), Error> {
        if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
            self.pos += lit.len();
            Ok(())
        } else {
            Err(Error::custom(format!(
                "expected `{lit}` at offset {}",
                self.pos
            )))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => {
                self.expect("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b'[') => {
                self.pos += 1;
                let mut items = Vec::new();
                self.skip_ws();
                if self.peek() == Some(b']') {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                loop {
                    items.push(self.value()?);
                    self.skip_ws();
                    match self.bump()? {
                        b',' => {}
                        b']' => return Ok(Value::Array(items)),
                        c => {
                            return Err(Error::custom(format!(
                                "expected `,` or `]`, found `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
            Some(b'{') => {
                self.pos += 1;
                let mut map = Map::new();
                self.skip_ws();
                if self.peek() == Some(b'}') {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                loop {
                    self.skip_ws();
                    let key = self.string()?;
                    self.skip_ws();
                    self.expect(":")?;
                    let val = self.value()?;
                    map.insert(key, val);
                    self.skip_ws();
                    match self.bump()? {
                        b',' => {}
                        b'}' => return Ok(Value::Object(map)),
                        c => {
                            return Err(Error::custom(format!(
                                "expected `,` or `}}`, found `{}`",
                                c as char
                            )))
                        }
                    }
                }
            }
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(Error::custom(format!(
                "unexpected character `{}` at offset {}",
                c as char, self.pos
            ))),
            None => Err(Error::custom("unexpected end of JSON input")),
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        if self.bump()? != b'"' {
            return Err(Error::custom("expected string"));
        }
        let mut out = String::new();
        loop {
            match self.bump()? {
                b'"' => return Ok(out),
                b'\\' => match self.bump()? {
                    b'"' => out.push('"'),
                    b'\\' => out.push('\\'),
                    b'/' => out.push('/'),
                    b'n' => out.push('\n'),
                    b'r' => out.push('\r'),
                    b't' => out.push('\t'),
                    b'b' => out.push('\u{8}'),
                    b'f' => out.push('\u{c}'),
                    b'u' => {
                        let mut code = 0u32;
                        for _ in 0..4 {
                            let d = self.bump()?;
                            code = code * 16
                                + (d as char)
                                    .to_digit(16)
                                    .ok_or_else(|| Error::custom("bad \\u escape"))?;
                        }
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("bad \\u code point"))?,
                        );
                    }
                    c => {
                        return Err(Error::custom(format!(
                            "bad escape `\\{}`",
                            c as char
                        )))
                    }
                },
                c if c < 0x80 => out.push(c as char),
                c => {
                    // Re-decode a multi-byte UTF-8 sequence from the source.
                    let start = self.pos - 1;
                    let len = if c >= 0xf0 {
                        4
                    } else if c >= 0xe0 {
                        3
                    } else {
                        2
                    };
                    let end = start + len;
                    let chunk = self
                        .bytes
                        .get(start..end)
                        .ok_or_else(|| Error::custom("truncated UTF-8"))?;
                    let s =
                        std::str::from_utf8(chunk).map_err(|_| Error::custom("invalid UTF-8"))?;
                    out.push_str(s);
                    self.pos = end;
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        let n = if is_float {
            Number::F(text.parse().map_err(|_| Error::custom("bad number"))?)
        } else if text.starts_with('-') {
            Number::I(text.parse().map_err(|_| Error::custom("bad number"))?)
        } else {
            Number::U(text.parse().map_err(|_| Error::custom("bad number"))?)
        };
        Ok(Value::Number(n))
    }
}
