//! Vendored `serde_json` facade.
//!
//! The value tree, parser, and printer live in the vendored `serde`
//! crate (single data model, no circular dependency); this crate
//! provides the `serde_json` names the workspace imports: [`Value`],
//! [`json!`], [`to_value`], [`from_value`], [`to_string`], [`to_vec`],
//! [`from_str`], and [`from_slice`].

pub use serde::value::{Map, Number, Value};
pub use serde::Error;

/// `Result` alias matching serde_json's.
pub type Result<T> = std::result::Result<T, Error>;

/// Convert a serializable value into a [`Value`] tree.
pub fn to_value<T: serde::Serialize>(value: T) -> Result<Value> {
    Ok(value.to_json_value())
}

/// Reconstruct a typed value from a [`Value`] tree.
pub fn from_value<T: serde::de::DeserializeOwned>(value: Value) -> Result<T> {
    T::from_json_value(&value)
}

/// Serialize to compact JSON text.
pub fn to_string<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(serde::json::to_string_value(&value.to_json_value()))
}

/// Serialize to human-readable, two-space-indented JSON text with
/// deterministic (BTree-ordered) object keys.
pub fn to_string_pretty<T: serde::Serialize>(value: &T) -> Result<String> {
    Ok(serde::json::to_string_value_pretty(&value.to_json_value()))
}

/// Serialize to JSON bytes.
pub fn to_vec<T: serde::Serialize>(value: &T) -> Result<Vec<u8>> {
    to_string(value).map(String::into_bytes)
}

/// Parse JSON text into a typed value.
pub fn from_str<T: serde::de::DeserializeOwned>(s: &str) -> Result<T> {
    T::from_json_value(&serde::json::parse_str(s)?)
}

/// Parse JSON bytes into a typed value.
pub fn from_slice<T: serde::de::DeserializeOwned>(bytes: &[u8]) -> Result<T> {
    let s = std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid UTF-8 in JSON"))?;
    from_str(s)
}

#[doc(hidden)]
pub fn __value_from<T: serde::Serialize>(value: &T) -> Value {
    value.to_json_value()
}

/// Build a [`Value`] from JSON-ish syntax. Supports `null`, booleans,
/// numbers, strings, arrays, nested objects with string-literal keys,
/// and arbitrary serializable expressions in value position.
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    ([ $($tt:tt)* ]) => { $crate::json_array!([] $($tt)*) };
    ({ $($tt:tt)* }) => { $crate::json_object!({} $($tt)*) };
    ($other:expr) => { $crate::__value_from(&$other) };
}

/// Internal: array muncher. Accumulates completed element expressions in
/// the leading bracket group.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array {
    // Done (every accumulated element carries a trailing comma).
    ([ $($elems:expr,)* ]) => { $crate::Value::Array(vec![ $($elems),* ]) };
    // Next element is a nested array or object (brace/bracket tt).
    ([ $($elems:expr,)* ] [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($elems,)* $crate::json!([ $($inner)* ]), ] $($($rest)*)?)
    };
    ([ $($elems:expr,)* ] { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($elems,)* $crate::json!({ $($inner)* }), ] $($($rest)*)?)
    };
    ([ $($elems:expr,)* ] null $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($elems,)* $crate::Value::Null, ] $($($rest)*)?)
    };
    // Plain expression element.
    ([ $($elems:expr,)* ] $next:expr $(, $($rest:tt)*)?) => {
        $crate::json_array!([ $($elems,)* $crate::__value_from(&$next), ] $($($rest)*)?)
    };
}

/// Internal: object muncher. Accumulates `key => value-expr` pairs in the
/// leading brace group.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object {
    // Done (every accumulated pair carries a trailing comma).
    ({ $($key:literal => $val:expr,)* }) => {{
        #[allow(unused_mut)]
        let mut __m = $crate::Map::new();
        $( __m.insert($key.to_string(), $val); )*
        $crate::Value::Object(__m)
    }};
    // Nested object / array / null values.
    ({ $($done:literal => $dv:expr,)* } $key:literal : { $($inner:tt)* } $(, $($rest:tt)*)?) => {
        $crate::json_object!({ $($done => $dv,)* $key => $crate::json!({ $($inner)* }), } $($($rest)*)?)
    };
    ({ $($done:literal => $dv:expr,)* } $key:literal : [ $($inner:tt)* ] $(, $($rest:tt)*)?) => {
        $crate::json_object!({ $($done => $dv,)* $key => $crate::json!([ $($inner)* ]), } $($($rest)*)?)
    };
    ({ $($done:literal => $dv:expr,)* } $key:literal : null $(, $($rest:tt)*)?) => {
        $crate::json_object!({ $($done => $dv,)* $key => $crate::Value::Null, } $($($rest)*)?)
    };
    // Plain expression value.
    ({ $($done:literal => $dv:expr,)* } $key:literal : $val:expr $(, $($rest:tt)*)?) => {
        $crate::json_object!({ $($done => $dv,)* $key => $crate::__value_from(&$val), } $($($rest)*)?)
    };
}
