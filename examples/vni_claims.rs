//! VNI Claims demo (paper §III-C1, Listings 2-3): several jobs share one
//! Virtual Network by redeeming a named claim, while Per-Resource jobs
//! stay isolated from them. Also shows the deletion-stall rule: a claim
//! cannot release its VNI while jobs still use it.
//!
//! ```text
//! cargo run --release --example vni_claims
//! ```

use shs_des::{SimDur, SimTime};
use shs_fabric::{TrafficClass, Vni};
use shs_k8s::kinds;
use shs_mpi::{PairDevices, RankPair};
use slingshot_k8s::{osu_image, Cluster, ClusterConfig, VniCrdSpec};

fn vni_of(cluster: &Cluster, ns: &str, crd_name: &str) -> Vni {
    let crd = cluster.api.get(kinds::VNI, ns, crd_name).expect("VNI CRD");
    let spec: VniCrdSpec = serde_json::from_value(crd.spec.clone()).expect("spec");
    Vni(spec.vni)
}

fn main() {
    let mut cluster = Cluster::new(ClusterConfig::default());

    // 1. The user creates a claim first (Listing 2)...
    cluster.create_claim(SimTime::ZERO, "workflow", "stage-net");
    // ...then two cooperating jobs redeem it by name (Listing 3), plus an
    // unrelated Per-Resource job in the same namespace.
    let t0 = SimTime::from_nanos(500_000_000);
    cluster.submit_job(t0, "workflow", "producer", &[("vni", "stage-net")], 1, &osu_image(), None);
    cluster.submit_job(t0, "workflow", "consumer", &[("vni", "stage-net")], 1, &osu_image(), None);
    cluster.submit_job(t0, "workflow", "bystander", &[("vni", "true")], 1, &osu_image(), None);

    let now = cluster.run_until(
        SimTime::ZERO,
        SimTime::from_nanos(10_000_000_000),
        SimDur::from_millis(20),
    );

    // 2. Producer and consumer share the claim's VNI; the bystander owns
    //    a different one.
    let claim_vni = vni_of(&cluster, "workflow", "vni-claim-stage-net");
    let producer_vni = vni_of(&cluster, "workflow", "vni-producer");
    let consumer_vni = vni_of(&cluster, "workflow", "vni-consumer");
    let bystander_vni = vni_of(&cluster, "workflow", "vni-bystander");
    assert_eq!(producer_vni, claim_vni);
    assert_eq!(consumer_vni, claim_vni);
    assert_ne!(bystander_vni, claim_vni);
    println!("claim 'stage-net' owns {claim_vni}; producer+consumer share it; bystander has {bystander_vni}");

    // 3. Cross-job communication inside the claim works.
    let hp = cluster.pod_handle("workflow", "producer-0").expect("producer running");
    let hc = cluster.pod_handle("workflow", "consumer-0").expect("consumer running");
    if hp.node_idx != hc.node_idx {
        let (na, nb, fabric) = cluster.two_nodes_mut(hp.node_idx, hc.node_idx);
        let mut devs =
            PairDevices { dev_a: &mut na.inner.device, dev_b: &mut nb.inner.device, fabric };
        let mut pair = RankPair::open(
            &na.inner.host, hp.pid, &nb.inner.host, hc.pid, &mut devs, claim_vni,
            TrafficClass::Dedicated, now,
        )
        .expect("both jobs authenticate on the claim VNI");
        pair.send_a_to_b(&mut devs, 7, 65536);
        assert!(pair.recv_on_b(7));
        println!("producer -> consumer over the shared claim VNI: OK (64 kB)");
        pair.close(&mut devs);
    }

    // 4. Deleting the claim stalls while jobs use it...
    cluster.delete_claim("workflow", "stage-net");
    let now = cluster.run_until(now, now + SimDur::from_secs(5), SimDur::from_millis(20));
    assert!(
        cluster.api.get(kinds::VNI_CLAIM, "workflow", "stage-net").is_some(),
        "claim deletion must stall while users remain"
    );
    println!("claim deletion requested: stalled (2 jobs still attached) — as §III-C2 requires");

    // 5. ...and completes once the jobs are gone.
    cluster.delete_job("workflow", "producer");
    cluster.delete_job("workflow", "consumer");
    cluster.delete_job("workflow", "bystander");
    cluster.run_until(now, now + SimDur::from_secs(15), SimDur::from_millis(20));
    assert!(cluster.api.get(kinds::VNI_CLAIM, "workflow", "stage-net").is_none());
    assert_eq!(cluster.endpoint.borrow().db.allocated_count(), 0);
    println!("jobs gone -> claim finalized -> all VNIs released (audit log has the full history)");
    println!(
        "audit log entries: {}",
        cluster.endpoint.borrow().db.audit_len()
    );
}
