//! System-level co-location demo (paper use-case 2, §I): administrative
//! and monitoring tools run next to user applications without being able
//! to interfere with — or snoop on — their traffic.
//!
//! A "monitoring agent" runs as a system pod, reads per-VNI fabric
//! accounting and per-node CXI service inventories (management-plane
//! data), but cannot open endpoints on any tenant VNI.
//!
//! ```text
//! cargo run --release --example system_monitoring
//! ```

use shs_des::{SimDur, SimTime};
use shs_fabric::{TrafficClass, Vni};
use shs_k8s::kinds;
use shs_mpi::{PairDevices, RankPair};
use slingshot_k8s::{osu_image, Cluster, ClusterConfig, VniCrdSpec};

fn main() {
    let mut cluster = Cluster::new(ClusterConfig::default());

    // A tenant workload, plus a monitoring "job" colocated as a plain pod
    // (no VNI request — it needs none).
    cluster.submit_job(SimTime::ZERO, "tenant", "app", &[("vni", "true")], 2, &osu_image(), None);
    cluster.submit_job(SimTime::ZERO, "kube-system", "monitor", &[], 1, &osu_image(), None);
    let now = cluster.run_until(
        SimTime::ZERO,
        SimTime::from_nanos(10_000_000_000),
        SimDur::from_millis(20),
    );

    // Generate some tenant traffic.
    let crd = cluster.api.get(kinds::VNI, "tenant", "vni-app").expect("CRD");
    let spec: VniCrdSpec = serde_json::from_value(crd.spec.clone()).expect("spec");
    let vni = Vni(spec.vni);
    let h0 = cluster.pod_handle("tenant", "app-0").expect("running");
    let h1 = cluster.pod_handle("tenant", "app-1").expect("running");
    {
        let (na, nb, fabric) = cluster.two_nodes_mut(h0.node_idx, h1.node_idx);
        let mut devs =
            PairDevices { dev_a: &mut na.inner.device, dev_b: &mut nb.inner.device, fabric };
        let mut pair = RankPair::open(
            &na.inner.host, h0.pid, &nb.inner.host, h1.pid, &mut devs, vni,
            TrafficClass::Dedicated, now,
        )
        .expect("tenant authenticates");
        for i in 0..32 {
            pair.send_a_to_b(&mut devs, i, 128 * 1024);
            pair.recv_on_b(i);
        }
        pair.close(&mut devs);
    }

    // --- The monitoring view -------------------------------------------
    println!("monitoring agent report");
    println!("=======================");
    let traffic = cluster.fabric.traffic(vni);
    println!(
        "fabric per-VNI accounting: {vni} carried {} messages / {} bytes payload",
        traffic.messages, traffic.payload_bytes
    );
    println!(
        "switch counters: {} packets forwarded, {} drops",
        cluster.fabric.switch().counters.forwarded,
        cluster.fabric.switch().counters.total_drops()
    );
    for node in &cluster.nodes {
        println!("node {}:", node.inner.name);
        for svc in node.inner.device.driver.services() {
            println!(
                "  CXI service #{:<3} label={:<24} vnis={:?} members={}",
                svc.id.0,
                svc.label,
                svc.vnis.iter().map(|v| v.raw()).collect::<Vec<_>>(),
                svc.members.len(),
            );
        }
    }
    let ep = cluster.endpoint.borrow();
    println!(
        "VNI service: {} allocated, {} audit entries",
        ep.db.allocated_count(),
        ep.db.audit_len()
    );
    drop(ep);

    // --- The security boundary ------------------------------------------
    // The monitor can *observe* but cannot *join* tenant networks: its
    // pod netns is not a member of any tenant CXI service.
    let hm = cluster.pod_handle("kube-system", "monitor-0").expect("running");
    let node = &mut cluster.nodes[hm.node_idx];
    let err = shs_ofi::OfiEp::open(
        &node.inner.host,
        &mut node.inner.device,
        hm.pid,
        vni,
        TrafficClass::Dedicated,
    )
    .expect_err("monitor must not join tenant VNIs");
    println!("monitor attempting to open an endpoint on {vni}: {err} — isolation holds");
}
