//! Multi-tenant isolation demo (paper use-case 1, §I):
//!
//! Two tenants run side by side on the same two nodes. Each gets its own
//! Virtual Network; the Rosetta switch refuses to route across VNIs, and
//! the netns-member CXI services make the driver-level authentication
//! container-granular. The demo also replays the user-namespace
//! UID-spoofing attack from §III against both the stock and the extended
//! driver.
//!
//! ```text
//! cargo run --release --example multi_tenant_isolation
//! ```

use shs_cassini::{CassiniNic, CassiniParams};
use shs_cxi::{CxiDevice, CxiDriver, CxiServiceDesc, SvcMember};
use shs_des::{DetRng, SimDur, SimTime};
use shs_fabric::{NicAddr, TrafficClass, Vni};
use shs_k8s::kinds;
use shs_mpi::{PairDevices, RankPair};
use shs_oslinux::{Gid, Host, IdMapEntry, Pid, Uid};
use slingshot_k8s::{osu_image, Cluster, ClusterConfig, VniCrdSpec};

fn job_vni(cluster: &Cluster, ns: &str, job: &str) -> Vni {
    let crd = cluster
        .api
        .get(kinds::VNI, ns, &format!("vni-{job}"))
        .unwrap_or_else(|| panic!("VNI CRD for {ns}/{job}"));
    let spec: VniCrdSpec = serde_json::from_value(crd.spec.clone()).expect("spec");
    Vni(spec.vni)
}

fn main() {
    let mut cluster = Cluster::new(ClusterConfig::default());

    // Two tenants, each with a 2-rank RDMA job in its own namespace.
    for tenant in ["tenant-a", "tenant-b"] {
        cluster.submit_job(
            SimTime::ZERO,
            tenant,
            "app",
            &[("vni", "true")],
            2,
            &osu_image(),
            None,
        );
    }
    let now = cluster.run_until(
        SimTime::ZERO,
        SimTime::from_nanos(10_000_000_000),
        SimDur::from_millis(20),
    );

    let vni_a = job_vni(&cluster, "tenant-a", "app");
    let vni_b = job_vni(&cluster, "tenant-b", "app");
    assert_ne!(vni_a, vni_b);
    println!("tenant-a got {vni_a}, tenant-b got {vni_b} — mutually exclusive by construction");

    // Intra-tenant traffic flows.
    let a0 = cluster.pod_handle("tenant-a", "app-0").expect("running");
    let a1 = cluster.pod_handle("tenant-a", "app-1").expect("running");
    {
        let (na, nb, fabric) = cluster.two_nodes_mut(a0.node_idx, a1.node_idx);
        let mut devs =
            PairDevices { dev_a: &mut na.inner.device, dev_b: &mut nb.inner.device, fabric };
        let mut pair = RankPair::open(
            &na.inner.host, a0.pid, &nb.inner.host, a1.pid, &mut devs, vni_a,
            TrafficClass::Dedicated, now,
        )
        .expect("tenant-a authenticates on its own VNI");
        pair.send_a_to_b(&mut devs, 1, 4096);
        assert!(pair.recv_on_b(1));
        println!("tenant-a intra-job RDMA: OK");
        pair.close(&mut devs);
    }

    // Cross-tenant: tenant-b's pod cannot even *open* an endpoint on
    // tenant-a's VNI — no CXI service in its netns offers it.
    let b0 = cluster.pod_handle("tenant-b", "app-0").expect("running");
    {
        let node = &mut cluster.nodes[b0.node_idx];
        let err = shs_ofi::OfiEp::open(
            &node.inner.host,
            &mut node.inner.device,
            b0.pid,
            vni_a,
            TrafficClass::Dedicated,
        )
        .expect_err("cross-tenant endpoint must be refused");
        println!("tenant-b opening an endpoint on tenant-a's VNI: {err}");
    }

    // Even a forged NIC-level message on the wrong VNI dies at the switch.
    {
        let drops_before = cluster.fabric.switch().counters.total_drops();
        let src = cluster.nodes[0].inner.nic;
        let dst = cluster.nodes[1].inner.nic;
        let out = cluster.fabric.transfer(
            now,
            src,
            dst,
            Vni(4000), // never granted
            TrafficClass::Dedicated,
            4096,
            999,
        );
        println!("forged packet on un-granted VNI: {out:?}");
        assert!(cluster.fabric.switch().counters.total_drops() > drops_before);
    }

    // --- The §III UID-spoofing attack, stock vs extended driver -------
    println!("\nReplaying the user-namespace UID-spoofing attack:");
    for (label, driver) in [("stock driver", CxiDriver::stock()), ("extended driver", CxiDriver::extended())]
    {
        let mut host = Host::new("attack-node");
        let nic = CassiniNic::new(NicAddr(99), CassiniParams::default(), DetRng::new(1));
        let mut dev = CxiDevice::new(driver, nic);
        let root = host.credentials(Pid(1)).expect("init");
        // Victim's CXI service authenticates uid 4242.
        let id = dev
            .alloc_svc(
                &root,
                CxiServiceDesc {
                    members: vec![SvcMember::Uid(Uid(4242))],
                    vnis: vec![Vni(500)],
                    limits: Default::default(),
                    label: "victim".into(),
                },
            )
            .expect("victim service");
        // Mallory: container root in a wide user namespace, setuid(victim).
        let mallory = host.spawn_detached("mallory", Uid(3000), Gid(3000));
        let map = vec![IdMapEntry { inside_start: 0, outside_start: 100_000, count: 65_536 }];
        host.unshare_user_ns(mallory, map.clone(), map, Uid::ROOT, Gid::ROOT).expect("userns");
        host.setuid(mallory, Uid(4242)).expect("spoof inside userns");
        let res = dev.ep_alloc_on(&host, mallory, id, Vni(500), TrafficClass::Dedicated);
        match res {
            Ok(_) => println!("  {label}: attack SUCCEEDED (the vulnerability the paper fixes)"),
            Err(e) => println!("  {label}: attack blocked ({e})"),
        }
    }
}
