//! Quickstart: bring up a two-node Slingshot-K8s cluster, run a job with
//! an isolated Virtual Network, and measure RDMA bandwidth between its
//! pods — the 60-second tour of the whole stack.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use shs_des::{SimDur, SimTime};
use shs_fabric::{TrafficClass, Vni};
use shs_k8s::kinds;
use shs_mpi::{osu_bw_once, osu_latency_once, PairDevices, RankPair};
use slingshot_k8s::{osu_image, Cluster, ClusterConfig, VniCrdSpec};

fn main() {
    // 1. A two-node cluster: Rosetta-like switch, Cassini NICs, extended
    //    CXI driver, container runtime, bridge+cxi CNI chain, kubelets,
    //    scheduler, job controller, and the VNI Service.
    let mut cluster = Cluster::new(ClusterConfig::default());
    println!("cluster up: {} nodes, fabric at 200 Gb/s", cluster.nodes.len());

    // 2. Submit a 2-rank job that requests Slingshot via one annotation
    //    (paper Listing 1: `vni: "true"`).
    cluster.submit_job(
        SimTime::ZERO,
        "tenant-a",
        "osu",
        &[("vni", "true")],
        2,
        &osu_image(),
        None, // runs until killed
    );

    // 3. Let the control plane admit it (ticks of 20 ms).
    let now = cluster.run_until(
        SimTime::ZERO,
        SimTime::from_nanos(8_000_000_000),
        SimDur::from_millis(20),
    );

    // 4. Inspect what the VNI Service built.
    let crd = cluster.api.get(kinds::VNI, "tenant-a", "vni-osu").expect("VNI CRD created");
    let spec: VniCrdSpec = serde_json::from_value(crd.spec.clone()).expect("valid spec");
    let vni = Vni(spec.vni);
    println!("VNI Service allocated {vni} and the CNI plugin created netns-member CXI services");

    let h0 = cluster.pod_handle("tenant-a", "osu-0").expect("rank 0 running");
    let h1 = cluster.pod_handle("tenant-a", "osu-1").expect("rank 1 running");
    println!(
        "pods spread across nodes {} and {} (topology spread constraint)",
        h0.node_idx, h1.node_idx
    );

    // 5. Run OSU-style measurements over the job's private VNI, from
    //    processes inside the pods (netns authentication end to end).
    let (na, nb, fabric) = cluster.two_nodes_mut(h0.node_idx, h1.node_idx);
    let mut devs =
        PairDevices { dev_a: &mut na.inner.device, dev_b: &mut nb.inner.device, fabric };
    let mut pair = RankPair::open(
        &na.inner.host,
        h0.pid,
        &nb.inner.host,
        h1.pid,
        &mut devs,
        vni,
        TrafficClass::Dedicated,
        now,
    )
    .expect("pod processes authenticate via their netns");

    let lat = osu_latency_once(&mut pair, &mut devs, 8, 1000, 100);
    let bw = osu_bw_once(&mut pair, &mut devs, 1 << 20, 100, 10, 64);
    println!("osu_latency   8 B: {lat:.2} us (one-way)");
    println!("osu_bw       1 MB: {bw:.0} MB/s");
    pair.close(&mut devs);

    // 6. Tear down: deleting the job releases the VNI (30 s quarantine)
    //    and removes every CXI service.
    cluster.delete_job("tenant-a", "osu");
    cluster.run_until(now, now + SimDur::from_secs(8), SimDur::from_millis(20));
    assert!(!cluster.job_exists("tenant-a", "osu"));
    assert_eq!(cluster.endpoint.borrow().db.allocated_count(), 0);
    println!("job deleted; VNI released into quarantine; no CXI services leaked");
}
