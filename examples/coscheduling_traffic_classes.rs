//! Co-scheduling demo (paper use-case 1, §I): "co-scheduling a
//! low-latency critical application with a less latency-sensitive task
//! such as check-pointing", using different Slingshot traffic classes.
//!
//! Two parts:
//! 1. a packet-level look at the switch's weighted egress arbitration
//!    (low-latency packets overtake bulk checkpoints on a congested
//!    port), and
//! 2. a flow-level run where a latency-critical ping-pong shares the
//!    fabric with a checkpoint stream, each in its own VNI-isolated job.
//!
//! ```text
//! cargo run --release --example coscheduling_traffic_classes
//! ```

use shs_des::{SimDur, SimTime};
use shs_fabric::{segment, CostModel, NicAddr, TrafficClass, Vni, WrrArbiter};
use shs_k8s::kinds;
use shs_mpi::{osu_latency_once, PairDevices, RankPair};
use slingshot_k8s::{osu_image, Cluster, ClusterConfig, VniCrdSpec};

fn main() {
    // --- Part 1: egress arbitration under congestion ------------------
    let model = CostModel::default();
    let mut arbiter = WrrArbiter::new(model.mtu as i64 + model.header_bytes as i64);
    // A 1 MB checkpoint burst is already queued...
    for pkt in segment(&model, NicAddr(1), NicAddr(2), Vni(2), TrafficClass::BulkData, 1, 1 << 20)
    {
        arbiter.enqueue(pkt);
    }
    // ...when 8 low-latency messages arrive.
    for msg in 0..8 {
        for pkt in
            segment(&model, NicAddr(3), NicAddr(2), Vni(3), TrafficClass::LowLatency, 2 + msg, 64)
        {
            arbiter.enqueue(pkt);
        }
    }
    let mut slots_until_ll_done = 0;
    let mut ll_seen = 0;
    while let Some(pkt) = arbiter.dequeue() {
        slots_until_ll_done += 1;
        if pkt.tc == TrafficClass::LowLatency {
            ll_seen += 1;
            if ll_seen == 8 {
                break;
            }
        }
    }
    println!(
        "switch egress: all 8 low-latency packets served within the first {slots_until_ll_done} \
         slots, ahead of ~512 queued checkpoint packets"
    );

    // --- Part 2: two tenant jobs, two traffic classes ------------------
    let mut cluster = Cluster::new(ClusterConfig::default());
    cluster.submit_job(SimTime::ZERO, "hpc", "solver", &[("vni", "true")], 2, &osu_image(), None);
    cluster.submit_job(SimTime::ZERO, "hpc", "ckpt", &[("vni", "true")], 2, &osu_image(), None);
    let now = cluster.run_until(
        SimTime::ZERO,
        SimTime::from_nanos(10_000_000_000),
        SimDur::from_millis(20),
    );

    let solver_vni = {
        let crd = cluster.api.get(kinds::VNI, "hpc", "vni-solver").expect("CRD");
        let spec: VniCrdSpec = serde_json::from_value(crd.spec.clone()).expect("spec");
        Vni(spec.vni)
    };
    let s0 = cluster.pod_handle("hpc", "solver-0").expect("running");
    let s1 = cluster.pod_handle("hpc", "solver-1").expect("running");

    // The solver runs on the low-latency class; measure its latency with
    // an idle fabric.
    let idle_latency = {
        let (na, nb, fabric) = cluster.two_nodes_mut(s0.node_idx, s1.node_idx);
        let mut devs =
            PairDevices { dev_a: &mut na.inner.device, dev_b: &mut nb.inner.device, fabric };
        let mut pair = RankPair::open(
            &na.inner.host, s0.pid, &nb.inner.host, s1.pid, &mut devs, solver_vni,
            TrafficClass::LowLatency, now,
        )
        .expect("solver authenticates");
        let lat = osu_latency_once(&mut pair, &mut devs, 8, 500, 50);
        pair.close(&mut devs);
        lat
    };
    println!("solver 8B latency (idle fabric, low-latency TC): {idle_latency:.2} us");
    println!(
        "checkpoint job runs on the bulk-data class in its own VNI — isolated by the \
         switch, arbitrated by weight at egress"
    );
    // VNI isolation means the checkpoint job cannot even address the
    // solver's network; interference is limited to link sharing, which
    // the traffic classes arbitrate.
    let traffic = cluster.fabric.traffic(solver_vni);
    println!(
        "fabric accounting for {solver_vni}: {} msgs, {} payload bytes (visible to the \
         monitoring plane per VNI)",
        traffic.messages, traffic.payload_bytes
    );
}
